// Package nettcp is the socket-backed transport: the same
// Send/Drain/Stats surface as internal/netsim, carried over real TCP
// connections so N OS processes can each host one node (or a few) of a
// provnet network. internal/core stays transport-agnostic — the wire
// v1–v5 datagrams it seals are shipped here as opaque payloads, so the
// signature, session-handshake, retraction, and termination machinery
// work unchanged across process boundaries.
//
// # Stream protocol
//
// Each direction of traffic between two processes is one TCP connection,
// opened lazily by the sending side and re-opened (with exponential
// backoff) if it drops. The byte stream is:
//
//	preamble  "PNT2" (4 bytes: magic + stream version)
//	hello     uvarint n, n bytes — a name identifying the sending
//	          process (its first registered node), used for diagnostics
//	          and restart detection; then uvarint incarnation — a value
//	          strictly increasing across restarts of that process
//	frame*    uvarint len, len bytes of body, where
//	          body = flags (1 byte; bit0 = handshake traffic class,
//	                 bit1 = sequenced, bit2 = ack control frame)
//	               + uvarint s, s bytes — source node name
//	               + uvarint d, d bytes — destination node name
//	               + uvarint seq (present iff bit1; for ack frames this
//	                 is the cumulative acknowledged sequence number)
//	               + payload (one wire v1–v5 datagram, opaque here;
//	                 empty for ack frames)
//
// See docs/WIRE.md for the datagram formats riding inside the frames.
//
// # Reliability
//
// With Config.Reliable set, every remote frame is assigned a sequence
// number on its directed (src,dst) node link and kept in a bounded
// per-peer retransmit window until the receiver acknowledges it. The
// receiver acks cumulatively (coalescing while the return writer is
// busy), suppresses duplicates by sequence window, and the sender
// replays the unacked window on reconnect and on ack timeout. A full
// window blocks SendTagged — backpressure into the round scheduler —
// until acks free space or the transport closes. Ack frames are
// transport-internal: they are never delivered upward, and are counted
// separately (Stats.AckMessages/AckBytes) so the reliability overhead
// is measurable next to the data plane.
//
// The hello incarnation detects peer joins and restarts: when a process
// observes a peer name for the first time, or a known name reappear
// with a larger incarnation, the restart handler (SetRestartHandler)
// fires so upper layers can (re-)announce soft state the peer does not
// hold — a restarted peer lost what the dead incarnation acknowledged,
// and a peer whose first hello arrives late may have missed traffic
// sent while its predecessor was dead without ever being seen alive.
// Receive dedup state is scoped by incarnation, so a restarted sender's
// fresh sequence numbers are not mistaken for duplicates.
//
// Acks are transport control, below the "says" authentication layer:
// they assert TCP-level receipt, not tuple authenticity, which is
// still end-to-end via the sealed datagrams they acknowledge.
//
// # Ordering and determinism
//
// One connection per (sender process → receiver process) direction means
// frames from one sender arrive in send order — the property the session
// security stack needs (a handshake frame must precede the data frames
// it unlocks). Retransmission preserves it: the window is replayed in
// order ahead of newer frames, and replayed frames the receiver already
// delivered fall into the duplicate window. Interleaving *between*
// senders is real network nondeterminism; unlike netsim there is no
// global deterministic drain order. The distributed fixpoint still
// converges to the same tables and provenance as the in-memory run
// because evaluation is confluent — see docs/ARCHITECTURE.md and
// core.TestTCPMatchesNetsim.
//
// # Accounting
//
// Stats counters are per process: a frame is charged once on the sending
// side (at enqueue) and once on the receiving side (at arrival), each
// charging the actual framed size (length prefix + flags + source +
// destination + sequence number if present + payload). Local deliveries
// between co-hosted nodes are charged once, like netsim's. Retransmitted
// frames are not re-charged to Messages/Bytes; they increment
// Stats.Retransmits instead.
package nettcp

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"provnet/internal/netsim"
)

// magic is the stream preamble: protocol magic plus stream version.
// Version 2 added the hello incarnation and the sequenced/ack frame
// flag bits.
var magic = [4]byte{'P', 'N', 'T', '2'}

// Frame flag bits.
const (
	flagHandshake = 1 << 0 // session-handshake traffic class
	flagSequenced = 1 << 1 // frame carries a uvarint sequence number
	flagAck       = 1 << 2 // transport ack; seq is the cumulative ack
)

// Defaults for Config's zero values.
const (
	DefaultDialTimeout       = 5 * time.Second
	DefaultRetryMin          = 50 * time.Millisecond
	DefaultRetryMax          = 2 * time.Second
	DefaultMaxFrame          = 1 << 24 // 16 MiB: far above any real envelope
	DefaultRetransmitTimeout = 500 * time.Millisecond
	DefaultWindow            = 4096 // frames per peer before backpressure
)

// Config configures a Transport.
type Config struct {
	// Listen is the TCP address to accept peer connections on
	// (e.g. "127.0.0.1:7001"; ":0" picks a free port — see Addr).
	Listen string
	// Peers maps remote node names to their dial addresses. Sends to a
	// node that is neither local (AddNode) nor a peer are dropped.
	Peers map[string]string
	// Context, when non-nil, bounds the transport's lifetime: its
	// cancellation closes the transport, aborting in-flight dials and
	// reads (the context-aware shutdown the lifecycle driver composes
	// with). Close works regardless.
	Context context.Context
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default 50ms..2s).
	RetryMin, RetryMax time.Duration
	// MaxFrame caps accepted frame sizes (default 16 MiB); larger frames
	// poison the connection (it is closed and the dialer re-opens it).
	MaxFrame int
	// Reliable enables sequence numbers, cumulative acks, the bounded
	// retransmit window, and duplicate suppression (see the package
	// comment). Off, the transport has TCP's delivery guarantee only:
	// frames accepted by a crashed peer's kernel are lost.
	Reliable bool
	// RetransmitTimeout is how long a sent frame may remain
	// unacknowledged before the window is replayed (default 500ms).
	RetransmitTimeout time.Duration
	// Window caps each peer's outstanding frames (queued + unacked);
	// a full window blocks SendTagged (default 4096). Reliable only.
	Window int
	// DropWrite, when set, is consulted before each frame write on a
	// live connection; returning true discards the frame as if the
	// network lost it after the kernel accepted it — the deterministic
	// loss hook the retransmit tests script. seq is 0 for frames
	// without a sequence number; ack marks ack control frames (their
	// seq is the cumulative ack).
	DropWrite func(peer string, seq uint64, ack bool) bool
	// Logf, when set, receives connection lifecycle diagnostics (dial
	// failures, dropped frames, protocol errors). Default: silent.
	Logf func(format string, args ...any)
}

// Transport is the TCP implementation of core.Transport. Create one per
// process with New, register the locally hosted node(s) with AddNode,
// and hand it to core via Config.Transport + Config.LocalNodes.
type Transport struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	ln     net.Listener
	inc    uint64 // this process's incarnation (monotonic across restarts)

	mu     sync.Mutex
	local  map[string]*inbox
	peers  map[string]*peer
	conns  map[net.Conn]struct{}
	closed bool
	// orphans parks inbound frames for local names not yet registered:
	// processes of one deployment start at different times, and a frame
	// that raced a slow process's AddNode must not be lost. AddNode
	// adopts them.
	orphans map[string][]netsim.Message
	// recvSeq is the receive-side duplicate window: highest delivered
	// sequence number per (sender incarnation, src, dst) link. Scoping
	// by incarnation keeps a restarted sender's fresh numbering apart
	// from its dead predecessor's.
	recvSeq map[recvKey]uint64
	// seenInc remembers the last hello incarnation per peer process
	// name; a larger one on a later connection is a restart.
	seenInc map[string]uint64

	notify  atomic.Pointer[func()]
	restart atomic.Pointer[func(process string)]
	wg      sync.WaitGroup

	messages      atomic.Int64
	bytes         atomic.Int64
	dropped       atomic.Int64
	hsMsgs        atomic.Int64
	hsBytes       atomic.Int64
	reconnects    atomic.Int64
	requeues      atomic.Int64
	parked        atomic.Int64
	acks          atomic.Int64
	ackBytes      atomic.Int64
	retransmits   atomic.Int64
	dupDropped    atomic.Int64
	backpressured atomic.Int64
}

// recvKey scopes the duplicate window by sender incarnation and link.
type recvKey struct {
	inc      uint64
	src, dst string
}

// inbox queues inbound datagrams for one locally hosted node.
type inbox struct {
	mu    sync.Mutex
	queue []netsim.Message
}

// frame is one outbound datagram awaiting shipment to a peer.
type frame struct {
	src, dst  string
	payload   []byte
	seq       uint64 // link sequence number; cumulative ack when ack
	handshake bool
	ack       bool
	sentAt    time.Time // last write time (retransmit window)
}

// peer is one remote process: a pending queue drained by a dedicated
// reconnecting writer goroutine, plus the reliability window.
type peer struct {
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	addr    string
	pending []frame
	closed  bool

	// Reliability state (Config.Reliable). seqs assigns per-(src,dst)
	// link sequence numbers at enqueue; unacked holds written frames
	// until the cumulative ack covers them (send order); ackDue holds
	// coalesced outbound acks keyed by local acking node; writing is
	// the frame the writer holds between queues (0 or 1); resendDue
	// asks the writer to replay the window (ack timeout).
	seqs      map[string]uint64
	unacked   []frame
	ackDue    map[string]uint64
	writing   int
	resendDue bool
}

// New creates a Transport listening on cfg.Listen and starts one writer
// goroutine per configured peer. The listener is live on return (Addr
// reports the bound address); peer connections are dialed lazily on
// first send.
func New(cfg Config) (*Transport, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.RetryMin <= 0 {
		cfg.RetryMin = DefaultRetryMin
	}
	if cfg.RetryMax < cfg.RetryMin {
		cfg.RetryMax = DefaultRetryMax
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.RetransmitTimeout <= 0 {
		cfg.RetransmitTimeout = DefaultRetransmitTimeout
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	parent := cfg.Context
	if parent == nil {
		parent = context.Background()
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("nettcp: listen %s: %w", cfg.Listen, err)
	}
	ctx, cancel := context.WithCancel(parent)
	t := &Transport{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		ln:      ln,
		inc:     uint64(time.Now().UnixNano()),
		local:   make(map[string]*inbox),
		peers:   make(map[string]*peer),
		conns:   make(map[net.Conn]struct{}),
		orphans: make(map[string][]netsim.Message),
		recvSeq: make(map[recvKey]uint64),
		seenInc: make(map[string]uint64),
	}
	for name, addr := range cfg.Peers {
		t.AddPeer(name, addr)
	}
	t.wg.Add(1)
	go t.acceptLoop()
	if cfg.Context != nil {
		go func() {
			<-ctx.Done()
			t.Close()
		}()
	}
	return t, nil
}

// Addr returns the bound listen address (useful with Listen ":0").
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// AddNode registers a locally hosted node, adopting any inbound frames
// that arrived for it before registration (the startup race between
// processes of one deployment).
func (t *Transport) AddNode(name string) {
	t.mu.Lock()
	if _, ok := t.local[name]; ok {
		t.mu.Unlock()
		return
	}
	box := &inbox{queue: t.orphans[name]}
	delete(t.orphans, name)
	t.local[name] = box
	adopted := len(box.queue) > 0
	t.mu.Unlock()
	if adopted {
		if fn := t.notify.Load(); fn != nil {
			(*fn)()
		}
	}
}

// AddPeer registers (or re-addresses) a remote node and starts its
// writer. Registering before traffic flows is the caller's job; sends to
// unregistered names error. Re-registering an existing peer name with a
// new address only takes effect on the next reconnect.
func (t *Transport) AddPeer(name, addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if p, ok := t.peers[name]; ok {
		p.mu.Lock()
		p.addr = addr
		p.mu.Unlock()
		return
	}
	p := &peer{name: name, addr: addr, seqs: make(map[string]uint64)}
	p.cond = sync.NewCond(&p.mu)
	t.peers[name] = p
	t.wg.Add(1)
	go t.writerLoop(p)
	if t.cfg.Reliable {
		t.wg.Add(1)
		go t.retransmitLoop(p)
	}
}

// Notify registers fn to run after every inbound enqueue (core.Notifier:
// the lifecycle driver's wake-up for datagrams arriving between rounds).
func (t *Transport) Notify(fn func()) { t.notify.Store(&fn) }

// SetRestartHandler registers fn to run when a peer process joins
// (first hello) or reappears with a larger hello incarnation — the
// join/leave hook: upper layers re-announce soft state the peer does
// not hold. Firing on first sight as well as on restart closes a
// detection gap: a peer killed before its hello ever reached this
// process looks like a fresh join when its replacement comes up, yet
// still needs the re-announcement. fn receives the peer's hello process
// name and runs on its own goroutine.
func (t *Transport) SetRestartHandler(fn func(process string)) { t.restart.Store(&fn) }

// Send enqueues a datagram, charging its bytes.
func (t *Transport) Send(from, to string, payload []byte) error {
	return t.SendTagged(from, to, payload, false)
}

// SendTagged is Send with the handshake traffic-class tag. Local
// destinations deliver in process; remote ones are handed to the peer's
// writer (charged now, shipped as the connection allows — TCP delivery
// is asynchronous, unlike netsim's synchronous enqueue). In reliable
// mode a full peer window blocks here until acknowledgements free space
// — the backpressure that keeps a fast sender from burying a slow or
// crashed peer.
func (t *Transport) SendTagged(from, to string, payload []byte, handshake bool) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errors.New("nettcp: transport closed")
	}
	box := t.local[to]
	p := t.peers[to]
	t.mu.Unlock()

	if box != nil {
		t.enqueue(box, from, to, payload, handshake)
		return nil
	}
	if p == nil {
		t.dropped.Add(1)
		return fmt.Errorf("nettcp: send to unknown node %q (not local, no peer address)", to)
	}
	f := frame{src: from, dst: to, payload: payload, handshake: handshake}
	p.mu.Lock()
	if t.cfg.Reliable {
		waited := false
		for len(p.pending)+len(p.unacked)+p.writing >= t.cfg.Window && !p.closed {
			if !waited {
				waited = true
				t.backpressured.Add(1)
			}
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return errors.New("nettcp: transport closed")
		}
		p.seqs[from]++
		f.seq = p.seqs[from]
	}
	p.pending = append(p.pending, f)
	p.cond.Broadcast()
	p.mu.Unlock()
	t.charge(from, to, payload, f.seq, handshake)
	return nil
}

// charge records one frame in the stats counters.
func (t *Transport) charge(src, dst string, payload []byte, seq uint64, handshake bool) {
	size := int64(frameWireSize(src, dst, payload, seq))
	t.messages.Add(1)
	t.bytes.Add(size)
	if handshake {
		t.hsMsgs.Add(1)
		t.hsBytes.Add(size)
	}
}

// enqueue delivers one datagram into a local inbox and fires the arrival
// notifier.
func (t *Transport) enqueue(box *inbox, from, to string, payload []byte, handshake bool) {
	t.charge(from, to, payload, 0, handshake)
	box.mu.Lock()
	box.queue = append(box.queue, netsim.Message{From: from, To: to, Payload: payload})
	box.mu.Unlock()
	if fn := t.notify.Load(); fn != nil {
		(*fn)()
	}
}

// Drain removes and returns all datagrams queued for a local node, in
// arrival order (per-sender send order is preserved by the per-direction
// connections and the in-order retransmit replay; interleaving between
// senders is arrival order).
func (t *Transport) Drain(to string) []netsim.Message {
	t.mu.Lock()
	box := t.local[to]
	t.mu.Unlock()
	if box == nil {
		return nil
	}
	box.mu.Lock()
	msgs := box.queue
	box.queue = nil
	box.mu.Unlock()
	return msgs
}

// PendingFor reports the inbound backlog queued for one local node.
func (t *Transport) PendingFor(to string) int {
	t.mu.Lock()
	box := t.local[to]
	t.mu.Unlock()
	if box == nil {
		return 0
	}
	box.mu.Lock()
	defer box.mu.Unlock()
	return len(box.queue)
}

// PendingCount reports the total inbound backlog across local nodes.
func (t *Transport) PendingCount() int {
	t.mu.Lock()
	boxes := make([]*inbox, 0, len(t.local))
	for _, box := range t.local {
		boxes = append(boxes, box)
	}
	t.mu.Unlock()
	total := 0
	for _, box := range boxes {
		box.mu.Lock()
		total += len(box.queue)
		box.mu.Unlock()
	}
	return total
}

// InFlight reports the outbound frames this process has accepted but
// cannot yet prove delivered: queued behind writers, held by writers,
// or written and awaiting acknowledgement. Ack control frames are
// excluded — the data they acknowledge already arrived. This is the
// transport's contribution to the distributed termination gauge
// (core.InFlighter): zero here plus empty inboxes everywhere means no
// datagram is in flight anywhere in the deployment.
func (t *Transport) InFlight() int {
	t.mu.Lock()
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	total := 0
	for _, p := range peers {
		p.mu.Lock()
		total += p.writing + len(p.unacked)
		for _, f := range p.pending {
			if !f.ack {
				total++
			}
		}
		p.mu.Unlock()
	}
	return total
}

// Flush blocks until every outbound frame has been shipped — and, in
// reliable mode, acknowledged — or ctx ends. Callers flush before Close
// when the last frames matter (a root broadcasting TERMINATE).
func (t *Transport) Flush(ctx context.Context) error {
	for {
		if t.InFlight() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.ctx.Done():
			return errors.New("nettcp: transport closed")
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// Stats returns a copy of this process's transport counters.
func (t *Transport) Stats() netsim.Stats {
	return netsim.Stats{
		Messages:          t.messages.Load(),
		Bytes:             t.bytes.Load(),
		DroppedMsg:        t.dropped.Load(),
		HandshakeMessages: t.hsMsgs.Load(),
		HandshakeBytes:    t.hsBytes.Load(),
		Reconnects:        t.reconnects.Load(),
		Requeues:          t.requeues.Load(),
		Parked:            t.parked.Load(),
		AckMessages:       t.acks.Load(),
		AckBytes:          t.ackBytes.Load(),
		Retransmits:       t.retransmits.Load(),
		DupDropped:        t.dupDropped.Load(),
		Backpressured:     t.backpressured.Load(),
	}
}

// ResetStats zeroes the counters.
func (t *Transport) ResetStats() {
	t.messages.Store(0)
	t.bytes.Store(0)
	t.dropped.Store(0)
	t.hsMsgs.Store(0)
	t.hsBytes.Store(0)
	t.reconnects.Store(0)
	t.requeues.Store(0)
	t.parked.Store(0)
	t.acks.Store(0)
	t.ackBytes.Store(0)
	t.retransmits.Store(0)
	t.dupDropped.Store(0)
	t.backpressured.Store(0)
}

// QueueDepths reports the outbound backlog per peer: frames accepted by
// SendTagged that the peer's writer has not yet shipped. The map is
// freshly allocated (scrape-time cost, not hot-path).
func (t *Transport) QueueDepths() map[string]int {
	t.mu.Lock()
	peers := make([]*peer, 0, len(t.peers))
	for _, p := range t.peers {
		peers = append(peers, p)
	}
	t.mu.Unlock()
	out := make(map[string]int, len(peers))
	for _, p := range peers {
		p.mu.Lock()
		out[p.name] = len(p.pending)
		p.mu.Unlock()
	}
	return out
}

// Close shuts the transport down: the listener stops, writer goroutines
// exit (undelivered frames are discarded — Flush first if they matter),
// and open connections close. Idempotent; also triggered by
// Config.Context cancellation.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()

	t.cancel()
	err := t.ln.Close()
	for _, p := range t.peers {
		p.mu.Lock()
		p.closed = true
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// track registers a live connection for Close; it reports false when the
// transport is already closing (the caller must close the conn itself).
func (t *Transport) track(c net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[c] = struct{}{}
	return true
}

func (t *Transport) untrack(c net.Conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

// --- outbound path ---

// next blocks until work is available or the peer is closed. Due acks go
// out first (freshly synthesized from the coalesced cumulative state),
// then queued frames; a due window replay is folded back into the queue
// ahead of newer frames so per-link order survives retransmission.
func (p *peer) next(t *Transport) (frame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed {
			return frame{}, false
		}
		if p.resendDue {
			p.resendDue = false
			p.requeueWindowLocked(t)
		}
		if len(p.ackDue) > 0 {
			names := make([]string, 0, len(p.ackDue))
			for name := range p.ackDue {
				names = append(names, name)
			}
			sort.Strings(names)
			src := names[0]
			cum := p.ackDue[src]
			delete(p.ackDue, src)
			return frame{src: src, dst: p.name, seq: cum, ack: true}, true
		}
		if len(p.pending) > 0 {
			f := p.pending[0]
			p.pending = p.pending[1:]
			p.writing = 1
			return f, true
		}
		p.cond.Wait()
	}
}

// requeueWindowLocked replays the unacked window: the frames move back
// to the front of the queue in send order (all of them predate anything
// queued). Caller holds p.mu.
func (p *peer) requeueWindowLocked(t *Transport) {
	n := len(p.unacked)
	if n == 0 {
		return
	}
	merged := make([]frame, 0, n+len(p.pending))
	merged = append(merged, p.unacked...)
	merged = append(merged, p.pending...)
	p.pending = merged
	p.unacked = nil
	t.retransmits.Add(int64(n))
}

// shipped records a successful (or loss-injected) write: sequenced data
// frames enter the unacked window stamped with the write time; acks and
// unsequenced frames are done.
func (p *peer) shipped(f frame) {
	p.mu.Lock()
	p.writing = 0
	if f.seq > 0 && !f.ack {
		f.sentAt = time.Now()
		p.unacked = append(p.unacked, f)
	}
	p.mu.Unlock()
}

// redeliver hands the writer-held frame back and replays the unacked
// window ahead of it: a fresh connection must repeat everything the dead
// one may have swallowed before anything newer (per-link order).
func (p *peer) redeliver(t *Transport, f frame) {
	p.mu.Lock()
	n := len(p.unacked)
	merged := make([]frame, 0, n+1+len(p.pending))
	merged = append(merged, p.unacked...)
	merged = append(merged, f)
	merged = append(merged, p.pending...)
	p.pending = merged
	p.unacked = nil
	p.writing = 0
	t.retransmits.Add(int64(n))
	p.mu.Unlock()
}

// retransmitLoop watches one peer's unacked window and asks the writer
// to replay it when the oldest frame times out. The writer owns all
// queue surgery; this goroutine only raises the flag.
func (t *Transport) retransmitLoop(p *peer) {
	defer t.wg.Done()
	for {
		if !t.sleep(t.cfg.RetransmitTimeout / 2) {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		if len(p.unacked) > 0 && time.Since(p.unacked[0].sentAt) >= t.cfg.RetransmitTimeout {
			p.resendDue = true
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// writerLoop ships one peer's frames over a lazily dialed, reconnecting
// connection. A failed write keeps the frame, drops the connection, and
// retries with exponential backoff; in reliable mode every reconnect and
// every ack timeout replays the unacked window in order, so the delivery
// guarantee is exactly-once into the receiving inbox (duplicates are
// suppressed by the receive window). Without Reliable the guarantee is
// TCP's, no more: frames the kernel accepted that the peer never read
// (peer crash) are lost, and only soft-state refresh re-supplies them.
func (t *Transport) writerLoop(p *peer) {
	defer t.wg.Done()
	var conn net.Conn
	var bw *bufio.Writer
	var cur *frame
	connected := false // a successful dial after the first is a reconnect
	backoff := t.cfg.RetryMin
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		if cur == nil {
			f, ok := p.next(t)
			if !ok {
				return
			}
			cur = &f
		}
		if conn == nil {
			c, err := t.dial(p)
			if err != nil {
				if t.ctx.Err() != nil {
					return
				}
				t.cfg.Logf("nettcp: dial %s: %v; retrying in %v", p.name, err, backoff)
				if !t.sleep(backoff) {
					return
				}
				backoff = min(backoff*2, t.cfg.RetryMax)
				continue
			}
			conn, bw = c, bufio.NewWriter(c)
			backoff = t.cfg.RetryMin
			if connected {
				t.reconnects.Add(1)
			}
			connected = true
			if t.cfg.Reliable {
				// The dead connection may have swallowed the window;
				// replay it ahead of the held frame and re-pop in order.
				p.redeliver(t, *cur)
				cur = nil
				continue
			}
		}
		if t.cfg.DropWrite != nil && t.cfg.DropWrite(p.name, cur.seq, cur.ack) {
			// Scripted loss: the frame vanishes after "the kernel took
			// it". For sequenced frames that is only possible when the
			// connection dies, so model exactly that — the frame enters
			// the unacked window and the poisoned connection's successor
			// replays the window in order (selective per-frame loss
			// would put gaps on the wire that go-back-N cannot see).
			// Acks and unsequenced frames just vanish.
			p.shipped(*cur)
			if cur.seq > 0 && !cur.ack {
				t.untrack(conn)
				conn.Close()
				conn = nil
			}
			cur = nil
			continue
		}
		err := writeFrame(bw, *cur)
		if err == nil {
			err = bw.Flush()
		}
		if err == nil {
			if cur.ack {
				t.acks.Add(1)
				t.ackBytes.Add(int64(frameWireSize(cur.src, cur.dst, nil, cur.seq)))
			}
			p.shipped(*cur)
			cur = nil
			continue
		}
		if t.ctx.Err() != nil {
			return
		}
		t.cfg.Logf("nettcp: write to %s: %v; reconnecting", p.name, err)
		t.requeues.Add(1) // cur survives the dropped conn; retried above
		t.untrack(conn)
		conn.Close()
		conn = nil
		if !t.sleep(backoff) {
			return
		}
		backoff = min(backoff*2, t.cfg.RetryMax)
	}
}

// dial opens, tracks, and primes (preamble + hello) a connection to p.
func (t *Transport) dial(p *peer) (net.Conn, error) {
	p.mu.Lock()
	addr := p.addr
	p.mu.Unlock()
	d := net.Dialer{Timeout: t.cfg.DialTimeout}
	conn, err := d.DialContext(t.ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if !t.track(conn) {
		conn.Close()
		return nil, errors.New("transport closed")
	}
	hello := append([]byte{}, magic[:]...)
	// The hello names the sending *process*; each frame names its own
	// sending node, so one process can host several. The incarnation
	// lets receivers spot a restart of the same process.
	hello = binary.AppendUvarint(hello, uint64(len(t.helloName())))
	hello = append(hello, t.helloName()...)
	hello = binary.AppendUvarint(hello, t.inc)
	if _, err := conn.Write(hello); err != nil {
		t.untrack(conn)
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// helloName identifies this process on the wire: its first local node
// (registration order), or "?" before any AddNode.
func (t *Transport) helloName() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	for name := range t.local {
		return name
	}
	return "?"
}

// sleep waits d or until shutdown, reporting whether to continue.
func (t *Transport) sleep(d time.Duration) bool {
	select {
	case <-t.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// frameWireSize is the framed size of one datagram: length prefix,
// flags byte, source, destination, optional sequence number, payload.
func frameWireSize(src, dst string, payload []byte, seq uint64) int {
	body := 1 + uvarintLen(uint64(len(src))) + len(src) +
		uvarintLen(uint64(len(dst))) + len(dst) + len(payload)
	if seq > 0 {
		body += uvarintLen(seq)
	}
	return uvarintLen(uint64(body)) + body
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// writeFrame writes one length-prefixed frame. Source and destination
// node names ride in the frame header (not per connection) so one
// process can host several nodes and the receiver learns From without
// decoding the payload.
func writeFrame(w *bufio.Writer, f frame) error {
	var hdr [binary.MaxVarintLen64]byte
	body := 1 + uvarintLen(uint64(len(f.src))) + len(f.src) +
		uvarintLen(uint64(len(f.dst))) + len(f.dst) + len(f.payload)
	if f.seq > 0 {
		body += uvarintLen(f.seq)
	}
	n := binary.PutUvarint(hdr[:], uint64(body))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	flags := byte(0)
	if f.handshake {
		flags |= flagHandshake
	}
	if f.seq > 0 {
		flags |= flagSequenced
	}
	if f.ack {
		flags |= flagAck
	}
	if err := w.WriteByte(flags); err != nil {
		return err
	}
	for _, s := range []string{f.src, f.dst} {
		n = binary.PutUvarint(hdr[:], uint64(len(s)))
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := w.WriteString(s); err != nil {
			return err
		}
	}
	if f.seq > 0 {
		n = binary.PutUvarint(hdr[:], f.seq)
		if _, err := w.Write(hdr[:n]); err != nil {
			return err
		}
	}
	_, err := w.Write(f.payload)
	return err
}

// --- inbound path ---

// acceptLoop admits peer connections until the listener closes.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		if !t.track(conn) {
			conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// readLoop consumes one inbound connection: preamble, hello (with
// restart detection), then frames — acks are absorbed into the sender
// window, duplicates dropped, fresh data delivered to local inboxes and
// acknowledged. Protocol errors poison only this connection; the peer's
// dialer re-opens it.
func (t *Transport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer conn.Close()
	br := bufio.NewReader(conn)
	var pre [4]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != magic {
		t.cfg.Logf("nettcp: bad preamble from %s", conn.RemoteAddr())
		return
	}
	hello, err := readLengthPrefixed(br, t.cfg.MaxFrame)
	if err != nil {
		t.cfg.Logf("nettcp: bad hello from %s: %v", conn.RemoteAddr(), err)
		return
	}
	from := string(hello)
	inc, err := binary.ReadUvarint(br)
	if err != nil {
		t.cfg.Logf("nettcp: bad hello incarnation from %s: %v", from, err)
		return
	}
	t.observeIncarnation(from, inc)
	for {
		body, err := readLengthPrefixed(br, t.cfg.MaxFrame)
		if err != nil {
			if err != io.EOF && t.ctx.Err() == nil {
				t.cfg.Logf("nettcp: read from %s: %v", from, err)
			}
			return
		}
		flags, src, dst, seq, payload, err := parseFrame(body)
		if err != nil {
			t.cfg.Logf("nettcp: corrupt frame from %s: %v", from, err)
			return
		}
		handshake := flags&flagHandshake != 0
		if flags&flagAck != 0 {
			t.acks.Add(1)
			t.ackBytes.Add(int64(frameWireSize(src, dst, nil, seq)))
			t.handleAck(src, dst, seq)
			continue
		}
		if seq > 0 {
			cum, fresh := t.admit(inc, src, dst, seq)
			t.queueAck(dst, src, cum)
			if !fresh {
				t.dupDropped.Add(1)
				continue
			}
		}
		t.mu.Lock()
		box := t.local[dst]
		if box == nil {
			// Not registered (yet): park the frame for AddNode. A name
			// this process will never host leaks its backlog here; the
			// log line is the operator's clue to a peer-map typo.
			t.charge(src, dst, payload, seq, handshake)
			t.parked.Add(1)
			t.orphans[dst] = append(t.orphans[dst], netsim.Message{From: src, To: dst, Payload: payload})
			t.mu.Unlock()
			t.cfg.Logf("nettcp: frame from %s parked for unregistered node %q", src, dst)
			continue
		}
		t.mu.Unlock()
		t.enqueue(box, src, dst, payload, handshake)
	}
}

// observeIncarnation records a peer process's hello incarnation and
// fires the restart handler when a name first appears (join) or a known
// name reappears newer (restart). Re-hellos of the live incarnation —
// plain reconnects — fire nothing.
func (t *Transport) observeIncarnation(process string, inc uint64) {
	t.mu.Lock()
	prev, seen := t.seenInc[process]
	if !seen || inc > prev {
		t.seenInc[process] = inc
	}
	t.mu.Unlock()
	if seen && inc <= prev {
		return
	}
	if seen {
		t.cfg.Logf("nettcp: peer process %s restarted (incarnation %d -> %d)", process, prev, inc)
	} else {
		t.cfg.Logf("nettcp: peer process %s joined (incarnation %d)", process, inc)
	}
	if fn := t.restart.Load(); fn != nil {
		go (*fn)(process)
	}
}

// admit runs the receive-side duplicate window for one sequenced frame:
// it reports the cumulative sequence to acknowledge and whether the
// frame is fresh (deliverable). A gap on a link with no window state
// means this receiver lost the state (it restarted): the stream
// resynchronizes at the frame in hand, and the content of the missed
// prefix comes back through soft-state re-announcement, not the
// transport. A gap on a link *with* state should be impossible under
// go-back-N replay; the frame is rejected unacknowledged so the
// sender's in-order window replay re-delivers it in sequence.
func (t *Transport) admit(inc uint64, src, dst string, seq uint64) (cum uint64, fresh bool) {
	k := recvKey{inc: inc, src: src, dst: dst}
	t.mu.Lock()
	defer t.mu.Unlock()
	last := t.recvSeq[k]
	switch {
	case seq <= last:
		return last, false
	case seq > last+1 && last != 0:
		t.cfg.Logf("nettcp: link %s->%s seq %d jumps past %d; awaiting in-order replay", src, dst, seq, last)
		return last, false
	}
	t.recvSeq[k] = seq
	return seq, true
}

// handleAck clears the acknowledged prefix of the (ackDst -> ackSrc)
// link from the sender window and releases any blocked senders.
func (t *Transport) handleAck(ackSrc, ackDst string, cum uint64) {
	t.mu.Lock()
	p := t.peers[ackSrc]
	t.mu.Unlock()
	if p == nil {
		return
	}
	p.mu.Lock()
	kept := p.unacked[:0]
	removed := false
	for _, f := range p.unacked {
		if f.src == ackDst && f.seq <= cum {
			removed = true
			continue
		}
		kept = append(kept, f)
	}
	p.unacked = kept
	if removed {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// queueAck coalesces an outbound cumulative ack for the (sender ->
// localDst) link onto the sender's peer writer. Duplicate arrivals
// re-ack so a sender that missed the first ack still clears its window.
func (t *Transport) queueAck(localDst, sender string, cum uint64) {
	t.mu.Lock()
	p := t.peers[sender]
	t.mu.Unlock()
	if p == nil {
		t.cfg.Logf("nettcp: no return path to %s to ack frames for %s", sender, localDst)
		return
	}
	p.mu.Lock()
	if p.ackDue == nil {
		p.ackDue = make(map[string]uint64)
	}
	if cum > p.ackDue[localDst] {
		p.ackDue[localDst] = cum
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// readLengthPrefixed reads one uvarint-length-prefixed block.
func readLengthPrefixed(br *bufio.Reader, max int) ([]byte, error) {
	l, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if l > uint64(max) {
		return nil, fmt.Errorf("block of %d bytes exceeds cap %d", l, max)
	}
	buf := make([]byte, l)
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// parseFrame splits a frame body into flags, source, destination,
// sequence number (0 when absent), and payload.
func parseFrame(body []byte) (flags byte, src, dst string, seq uint64, payload []byte, err error) {
	if len(body) < 1 {
		return 0, "", "", 0, nil, errors.New("empty frame")
	}
	flags = body[0]
	rest := body[1:]
	names := [2]string{}
	for i := range names {
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return 0, "", "", 0, nil, errors.New("bad name length")
		}
		names[i] = string(rest[n : n+int(l)])
		rest = rest[n+int(l):]
	}
	if flags&flagSequenced != 0 {
		var n int
		seq, n = binary.Uvarint(rest)
		if n <= 0 || seq == 0 {
			return 0, "", "", 0, nil, errors.New("bad sequence number")
		}
		rest = rest[n:]
	}
	return flags, names[0], names[1], seq, rest, nil
}
