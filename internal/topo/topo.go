// Package topo generates network topologies for experiments. The paper's
// evaluation inserts "link tables for N nodes with average outdegree of
// three" (§6); RandomConnected reproduces that workload: a ring backbone
// guarantees strong connectivity and random extra edges raise the average
// out-degree to the requested value, all seeded for reproducibility.
package topo

import (
	"fmt"
	"math/rand"
)

// Link is a directed edge with a cost.
type Link struct {
	From, To string
	Cost     int64
}

// Graph is a generated topology.
type Graph struct {
	Nodes []string
	Links []Link
}

// NodeName returns the canonical experiment node name for index i
// ("n0", "n1", ...).
func NodeName(i int) string { return fmt.Sprintf("n%d", i) }

// Options configures generation.
type Options struct {
	// N is the node count.
	N int
	// AvgOutDegree is the target average out-degree (the paper uses 3).
	AvgOutDegree int
	// MaxCost draws link costs uniformly from [1, MaxCost]; 0 or 1 makes
	// all costs 1.
	MaxCost int64
	// Seed makes generation reproducible.
	Seed int64
}

// RandomConnected generates a strongly connected directed graph with the
// requested average out-degree: a directed ring (out-degree 1) plus
// AvgOutDegree-1 random extra out-edges per node (no self-loops, no
// duplicate edges).
func RandomConnected(opts Options) *Graph {
	if opts.N < 2 {
		opts.N = 2
	}
	if opts.AvgOutDegree < 1 {
		opts.AvgOutDegree = 1
	}
	r := rand.New(rand.NewSource(opts.Seed))
	g := &Graph{}
	for i := 0; i < opts.N; i++ {
		g.Nodes = append(g.Nodes, NodeName(i))
	}
	cost := func() int64 {
		if opts.MaxCost <= 1 {
			return 1
		}
		return 1 + r.Int63n(opts.MaxCost)
	}
	seen := make(map[[2]int]bool)
	addEdge := func(i, j int) bool {
		if i == j || seen[[2]int{i, j}] {
			return false
		}
		seen[[2]int{i, j}] = true
		g.Links = append(g.Links, Link{From: g.Nodes[i], To: g.Nodes[j], Cost: cost()})
		return true
	}
	// Ring backbone.
	for i := 0; i < opts.N; i++ {
		addEdge(i, (i+1)%opts.N)
	}
	// Random extra edges. Cap attempts so dense small graphs terminate.
	extra := (opts.AvgOutDegree - 1) * opts.N
	maxAttempts := extra * 20
	for added, attempts := 0, 0; added < extra && attempts < maxAttempts; attempts++ {
		if addEdge(r.Intn(opts.N), r.Intn(opts.N)) {
			added++
		}
	}
	return g
}

// Line generates a bidirectional line topology n0 - n1 - ... with unit
// costs.
func Line(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, NodeName(i))
	}
	for i := 0; i+1 < n; i++ {
		g.Links = append(g.Links,
			Link{From: g.Nodes[i], To: g.Nodes[i+1], Cost: 1},
			Link{From: g.Nodes[i+1], To: g.Nodes[i], Cost: 1})
	}
	return g
}

// Ring generates a unidirectional ring with unit costs.
func Ring(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, NodeName(i))
	}
	for i := 0; i < n; i++ {
		g.Links = append(g.Links, Link{From: g.Nodes[i], To: g.Nodes[(i+1)%n], Cost: 1})
	}
	return g
}

// Star generates a hub-and-spoke topology with bidirectional unit-cost
// links; node n0 is the hub.
func Star(n int) *Graph {
	g := &Graph{}
	for i := 0; i < n; i++ {
		g.Nodes = append(g.Nodes, NodeName(i))
	}
	for i := 1; i < n; i++ {
		g.Links = append(g.Links,
			Link{From: g.Nodes[0], To: g.Nodes[i], Cost: 1},
			Link{From: g.Nodes[i], To: g.Nodes[0], Cost: 1})
	}
	return g
}

// Custom builds a graph from explicit links, collecting the node set.
func Custom(links []Link) *Graph {
	g := &Graph{Links: links}
	seen := map[string]bool{}
	for _, l := range links {
		for _, n := range []string{l.From, l.To} {
			if !seen[n] {
				seen[n] = true
				g.Nodes = append(g.Nodes, n)
			}
		}
	}
	return g
}

// OutDegree returns each node's out-degree.
func (g *Graph) OutDegree() map[string]int {
	out := make(map[string]int, len(g.Nodes))
	for _, n := range g.Nodes {
		out[n] = 0
	}
	for _, l := range g.Links {
		out[l.From]++
	}
	return out
}

// AvgOutDegree returns the average out-degree.
func (g *Graph) AvgOutDegree() float64 {
	if len(g.Nodes) == 0 {
		return 0
	}
	return float64(len(g.Links)) / float64(len(g.Nodes))
}

// Adjacency returns the out-neighbour cost map.
func (g *Graph) Adjacency() map[string]map[string]int64 {
	adj := make(map[string]map[string]int64, len(g.Nodes))
	for _, n := range g.Nodes {
		adj[n] = map[string]int64{}
	}
	for _, l := range g.Links {
		if cur, ok := adj[l.From][l.To]; !ok || l.Cost < cur {
			adj[l.From][l.To] = l.Cost
		}
	}
	return adj
}

// StronglyConnected reports whether every node reaches every other node.
func (g *Graph) StronglyConnected() bool {
	if len(g.Nodes) == 0 {
		return true
	}
	adj := g.Adjacency()
	radj := make(map[string][]string)
	for from, tos := range adj {
		for to := range tos {
			radj[to] = append(radj[to], from)
		}
	}
	reach := func(start string, next func(string) []string) int {
		seen := map[string]bool{start: true}
		stack := []string{start}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range next(cur) {
				if !seen[nb] {
					seen[nb] = true
					stack = append(stack, nb)
				}
			}
		}
		return len(seen)
	}
	fwd := reach(g.Nodes[0], func(n string) []string {
		var out []string
		for to := range adj[n] {
			out = append(out, to)
		}
		return out
	})
	bwd := reach(g.Nodes[0], func(n string) []string { return radj[n] })
	return fwd == len(g.Nodes) && bwd == len(g.Nodes)
}

// Dijkstra computes single-source shortest path costs from src, the
// reference oracle for Best-Path correctness tests.
func (g *Graph) Dijkstra(src string) map[string]int64 {
	adj := g.Adjacency()
	dist := map[string]int64{src: 0}
	visited := map[string]bool{}
	for {
		// Linear extraction keeps the oracle simple; graphs are small.
		best := ""
		var bestD int64
		for n, d := range dist {
			if visited[n] {
				continue
			}
			if best == "" || d < bestD {
				best, bestD = n, d
			}
		}
		if best == "" {
			return dist
		}
		visited[best] = true
		for to, c := range adj[best] {
			if d, ok := dist[to]; !ok || bestD+c < d {
				dist[to] = bestD + c
			}
		}
	}
}

// Reachable computes the set of nodes reachable from src (excluding src
// unless on a cycle), the oracle for transitive-closure tests.
func (g *Graph) Reachable(src string) map[string]bool {
	adj := g.Adjacency()
	seen := map[string]bool{}
	var stack []string
	for to := range adj[src] {
		stack = append(stack, to)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		for to := range adj[cur] {
			if !seen[to] {
				stack = append(stack, to)
			}
		}
	}
	return seen
}
