package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomConnectedProperties(t *testing.T) {
	g := RandomConnected(Options{N: 50, AvgOutDegree: 3, MaxCost: 10, Seed: 42})
	if len(g.Nodes) != 50 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	if !g.StronglyConnected() {
		t.Fatal("generated graph must be strongly connected")
	}
	avg := g.AvgOutDegree()
	if avg < 2.5 || avg > 3.5 {
		t.Errorf("avg out-degree = %.2f, want ~3", avg)
	}
	for _, l := range g.Links {
		if l.Cost < 1 || l.Cost > 10 {
			t.Errorf("cost out of range: %+v", l)
		}
		if l.From == l.To {
			t.Errorf("self loop: %+v", l)
		}
	}
	// No duplicate directed edges.
	seen := map[string]bool{}
	for _, l := range g.Links {
		k := l.From + ">" + l.To
		if seen[k] {
			t.Errorf("duplicate edge %s", k)
		}
		seen[k] = true
	}
}

func TestRandomConnectedReproducible(t *testing.T) {
	g1 := RandomConnected(Options{N: 20, AvgOutDegree: 3, MaxCost: 5, Seed: 7})
	g2 := RandomConnected(Options{N: 20, AvgOutDegree: 3, MaxCost: 5, Seed: 7})
	if len(g1.Links) != len(g2.Links) {
		t.Fatal("same seed must give same graph")
	}
	for i := range g1.Links {
		if g1.Links[i] != g2.Links[i] {
			t.Fatalf("links differ at %d: %+v vs %+v", i, g1.Links[i], g2.Links[i])
		}
	}
	g3 := RandomConnected(Options{N: 20, AvgOutDegree: 3, MaxCost: 5, Seed: 8})
	same := len(g1.Links) == len(g3.Links)
	if same {
		identical := true
		for i := range g1.Links {
			if g1.Links[i] != g3.Links[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Error("different seeds should give different graphs")
		}
	}
}

func TestDegenerateSizes(t *testing.T) {
	g := RandomConnected(Options{N: 0, AvgOutDegree: 0, Seed: 1})
	if len(g.Nodes) != 2 {
		t.Errorf("clamped to 2 nodes, got %d", len(g.Nodes))
	}
	if !g.StronglyConnected() {
		t.Error("tiny graph must still be connected")
	}
}

func TestLineRingStar(t *testing.T) {
	l := Line(4)
	if len(l.Links) != 6 {
		t.Errorf("line links = %d", len(l.Links))
	}
	if !l.StronglyConnected() {
		t.Error("line (bidirectional) is strongly connected")
	}
	r := Ring(5)
	if len(r.Links) != 5 || !r.StronglyConnected() {
		t.Error("ring")
	}
	s := Star(4)
	if len(s.Links) != 6 || !s.StronglyConnected() {
		t.Error("star")
	}
}

func TestCustom(t *testing.T) {
	g := Custom([]Link{{From: "x", To: "y", Cost: 2}, {From: "y", To: "x", Cost: 2}})
	if len(g.Nodes) != 2 || !g.StronglyConnected() {
		t.Errorf("custom graph: %+v", g)
	}
}

func TestDijkstraSmall(t *testing.T) {
	g := Custom([]Link{
		{From: "a", To: "b", Cost: 1},
		{From: "b", To: "c", Cost: 1},
		{From: "a", To: "c", Cost: 5},
	})
	d := g.Dijkstra("a")
	if d["b"] != 1 || d["c"] != 2 || d["a"] != 0 {
		t.Errorf("dijkstra = %v", d)
	}
	if _, ok := g.Dijkstra("c")["a"]; ok {
		t.Error("a unreachable from c")
	}
}

func TestReachableOracle(t *testing.T) {
	g := Custom([]Link{
		{From: "a", To: "b", Cost: 1},
		{From: "a", To: "c", Cost: 1},
		{From: "b", To: "c", Cost: 1},
	})
	ra := g.Reachable("a")
	if len(ra) != 2 || !ra["b"] || !ra["c"] {
		t.Errorf("Reachable(a) = %v", ra)
	}
	if len(g.Reachable("c")) != 0 {
		t.Error("c reaches nothing")
	}
	// Cycle: everything reaches everything including itself.
	cyc := Ring(3)
	if r := cyc.Reachable("n0"); len(r) != 3 || !r["n0"] {
		t.Errorf("cycle reachability = %v", r)
	}
}

func TestQuickGeneratedGraphsConnected(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		g := RandomConnected(Options{N: n, AvgOutDegree: 1 + r.Intn(4), MaxCost: 1 + r.Int63n(10), Seed: seed})
		return g.StronglyConnected() && len(g.Nodes) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDijkstraTriangleInequality(t *testing.T) {
	f := func(seed int64) bool {
		g := RandomConnected(Options{N: 15, AvgOutDegree: 3, MaxCost: 10, Seed: seed})
		adj := g.Adjacency()
		for _, src := range g.Nodes {
			d := g.Dijkstra(src)
			for from, tos := range adj {
				df, ok := d[from]
				if !ok {
					continue
				}
				for to, c := range tos {
					if dt, ok := d[to]; ok && dt > df+c {
						return false // relaxation violated
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
