package storelog_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"provnet/internal/core"
	"provnet/internal/data"
	"provnet/internal/storelog"
	"provnet/internal/topo"
)

func testTuple(name string) data.Tuple { return data.NewTuple("fact", data.Str(name)) }

func TestMain(m *testing.M) {
	os.Setenv("GODEBUG", "rsa1024min=0") // 512-bit test keys, like the package TestMains
	os.Exit(m.Run())
}

// churnRun drives the §6 Best-Path workload with the given Store through
// the live driver — converge, cut two links, restore one, re-converge —
// and returns the final published ReadView dump. The same deterministic
// schedule every time, so every Store implementation observes the same
// per-node event streams.
func churnRun(t *testing.T, st core.Store) (viewDump string) {
	t.Helper()
	g := topo.RandomConnected(topo.Options{N: 8, AvgOutDegree: 3, MaxCost: 10, Seed: 7})
	cfg := core.VariantConfig(core.VariantSeNDlogProv, core.BestPath)
	cfg.Graph = g
	cfg.KeyBits = 512
	cfg.Seed = 7
	cfg.Store = st
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	await := func() {
		t.Helper()
		if _, err := d.AwaitQuiescence(ctx); err != nil {
			t.Fatal(err)
		}
	}
	await()
	l0, l1 := g.Links[0], g.Links[1]
	if err := d.CutLink(l0.From, l0.To); err != nil {
		t.Fatal(err)
	}
	await()
	if err := d.CutLink(l1.From, l1.To); err != nil {
		t.Fatal(err)
	}
	await()
	if err := d.SetLink(l0.From, l0.To, l0.Cost); err != nil {
		t.Fatal(err)
	}
	await()
	dump := d.ReadView().Dump()
	if err := n.FlushStore(); err != nil {
		t.Fatalf("FlushStore: %v", err)
	}
	if err := n.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dump
}

// TestStoreLogMatchesMemory is the PR 6 determinism pin: the churn
// workload's tables and condensed provenance are bit-identical across
// (a) the in-memory MemStore materialization, (b) a storelog replay of
// the full event log, and (c) a storelog recovery from a snapshot plus
// tail events after a simulated crash (torn final record) — all three
// also matching the live driver's published ReadView.
func TestStoreLogMatchesMemory(t *testing.T) {
	// (a) In-memory oracle.
	mem := core.NewMemStore()
	viewDump := churnRun(t, mem)
	memState := mem.State()
	if got := memState.LiveDump(); got != viewDump {
		t.Fatalf("MemStore live state diverges from published ReadView\n--- view ---\n%s\n--- store ---\n%s", viewDump, got)
	}
	fullDump := memState.Dump()
	if mem.Seals() == 0 {
		t.Fatal("driver never sealed the store at quiescence")
	}

	// (b) Durable log, no snapshots: recovery replays every event.
	dirB := t.TempDir()
	logB, err := storelog.Open(dirB, storelog.Options{SealEvery: -1, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := churnRun(t, logB); got != viewDump {
		t.Fatalf("storelog run published different view\n--- mem ---\n%s\n--- log ---\n%s", viewDump, got)
	}
	stateB, statsB, err := storelog.Recover(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if statsB.SnapshotUsed {
		t.Error("SealEvery<0 run should have no snapshot to recover from")
	}
	if statsB.TornBytes != 0 {
		t.Errorf("clean close left %d torn bytes", statsB.TornBytes)
	}
	if got := stateB.LiveDump(); got != viewDump {
		t.Fatalf("full-log replay diverges\n--- mem ---\n%s\n--- replay ---\n%s", viewDump, got)
	}
	if got := stateB.Dump(); got != fullDump {
		t.Fatalf("full-log replay stale tier diverges\n--- mem ---\n%s\n--- replay ---\n%s", fullDump, got)
	}

	// (c) Durable log with aggressive snapshots, then a simulated crash:
	// garbage appended after the last intact record (a torn write). The
	// recovery must use a snapshot, skip the torn tail, and still match.
	dirC := t.TempDir()
	logC, err := storelog.Open(dirC, storelog.Options{SealEvery: 16, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := churnRun(t, logC); got != viewDump {
		t.Fatalf("snapshotting storelog run published different view")
	}
	path := filepath.Join(dirC, storelog.FileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A torn record: plausible length prefix, payload cut short mid-write.
	if _, err := f.Write([]byte{0x40, 0, 0, 0, byte(core.EvInsert), 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	stateC, statsC, err := storelog.Recover(dirC)
	if err != nil {
		t.Fatal(err)
	}
	if !statsC.SnapshotUsed {
		t.Error("SealEvery=16 run should recover from a snapshot")
	}
	if statsC.TornBytes == 0 {
		t.Error("crash simulation left no torn tail?")
	}
	if got := stateC.LiveDump(); got != viewDump {
		t.Fatalf("post-crash recovery diverges\n--- mem ---\n%s\n--- recovered ---\n%s", viewDump, got)
	}
	if got := stateC.Dump(); got != fullDump {
		t.Fatalf("post-crash recovery stale tier diverges")
	}
}

// TestStoreLogRestartResumes is the crash/restart half: reopening a log
// with a torn tail truncates it, appending resumes from the recovered
// state, and a second recovery sees both the old and the new events.
func TestStoreLogRestartResumes(t *testing.T) {
	dir := t.TempDir()
	l, err := storelog.Open(dir, storelog.Options{SealEvery: 2, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ev := func(kind core.EventKind, node, fact string, at float64) core.StoreEvent {
		return core.StoreEvent{Kind: kind, Node: node, Tuple: testTuple(fact), Prov: "<" + node + ">", At: at}
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(l.Append(ev(core.EvInsert, "a", "f1", 1)))
	must(l.Append(ev(core.EvInsert, "a", "f2", 1)))
	must(l.Seal()) // 2 events ≥ SealEvery: snapshot
	must(l.Append(ev(core.EvRetract, "a", "f1", 2)))
	must(l.Flush())
	if l.Pending() != 0 {
		t.Errorf("Pending after Flush = %d", l.Pending())
	}
	must(l.Close())

	// Crash: torn garbage after the clean close.
	path := filepath.Join(dir, storelog.FileName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Restart: Open truncates the torn tail and resumes.
	l2, err := storelog.Open(dir, storelog.Options{SealEvery: 2, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-2 {
		t.Errorf("reopen should truncate 2 torn bytes: before %d, after %d", before.Size(), after.Size())
	}
	must(l2.Append(ev(core.EvInsert, "b", "f3", 3)))
	must(l2.Close())

	state, stats, err := storelog.Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.SnapshotUsed {
		t.Error("recovery should start from the seal snapshot")
	}
	want := core.NewStoreState()
	for _, e := range []core.StoreEvent{
		ev(core.EvInsert, "a", "f1", 1), ev(core.EvInsert, "a", "f2", 1),
		ev(core.EvRetract, "a", "f1", 2), ev(core.EvInsert, "b", "f3", 3),
	} {
		want.Apply(e)
	}
	if got, w := state.Dump(), want.Dump(); got != w {
		t.Fatalf("restarted log state:\n%s\nwant:\n%s", got, w)
	}
}
