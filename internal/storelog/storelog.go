// Package storelog is the durable core.Store backend: an append-only
// record log of table-change events (insert/retract/expire/annotation)
// with periodic state snapshots at sealed quiescence points.
//
// Layout (one file, <dir>/store.log) — length-prefixed records in the
// style of docs/WIRE.md frames:
//
//	u32 LE payload length | payload | u32 LE CRC32-IEEE(payload)
//
// payload[0] is the record kind: 0–3 are the core.EventKind values
// (insert, retract, expire, prov), 4 is a seal snapshot. Event bodies are
// node string, tuple, prov string (data codec), then the logical clock as
// 8 LE bytes (IEEE-754). A seal body is the writer's full materialized
// core.StoreState in sorted order, so recovery replays only the tail
// after the last seal.
//
// Appends are handed to a writer goroutine (evaluation never blocks on
// the disk); Flush is the durability barrier the driver runs at every
// quiescence point. Recovery scans the log, uses the last valid seal
// snapshot, replays the events after it, and truncates at the first
// invalid record — a torn tail from a crash mid-write loses at most the
// events after the last Flush, and TestStoreLogMatchesMemory pins the
// replayed state bit-identical to the in-memory run.
package storelog

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"provnet/internal/core"
	"provnet/internal/data"
)

// FileName is the log file inside the store directory.
const FileName = "store.log"

// DefaultSealEvery is the snapshot cadence applied when Options.SealEvery
// is zero: a Seal() writes a snapshot record only if at least this many
// events were appended since the last snapshot, amortizing snapshot cost
// over churny runs while keeping recovery replay short.
const DefaultSealEvery = 1024

// maxRecord bounds a single record payload; longer length prefixes are
// treated as corruption (torn tail) during recovery.
const maxRecord = 1 << 30

const recSeal = 4 // record kind after the core.EventKind values

// Options configures a Log.
type Options struct {
	// SealEvery is the minimum number of events between snapshot records
	// (0 = DefaultSealEvery, <0 = never snapshot: recovery replays the
	// whole log).
	SealEvery int
	// NoSync skips the fsync in Flush (tests; durability is then only
	// as good as the OS page cache).
	NoSync bool
}

// Log is the durable Store. Create one with Open.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []core.StoreEvent
	sealReq  bool
	flushers []chan error
	closed   bool
	err      error // sticky: first write failure
	pending  int   // queued + in-flight events

	// Writer-goroutine-owned (no lock): the file, its buffer, the
	// materialized state snapshots are cut from, and the event count
	// since the last snapshot.
	f         *os.File
	w         *bufio.Writer
	state     *core.StoreState
	sinceSeal int

	done chan struct{}
}

// Log implements core.Store.
var _ core.Store = (*Log)(nil)

// Open opens (or creates) the store directory and starts the writer. An
// existing log is recovered first: the valid prefix is kept — a torn
// tail from a crash is truncated — and appending resumes from the
// recovered state.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SealEvery == 0 {
		opts.SealEvery = DefaultSealEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, FileName)
	state, stats, err := recoverFile(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop the torn tail so resumed appends extend the valid prefix.
	if err := f.Truncate(stats.ValidBytes); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(stats.ValidBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l := &Log{
		dir:       dir,
		opts:      opts,
		f:         f,
		w:         bufio.NewWriter(f),
		state:     state,
		sinceSeal: stats.TailEvents,
		done:      make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	go l.run()
	return l, nil
}

// Dir returns the store directory.
func (l *Log) Dir() string { return l.dir }

// Append enqueues one event for the writer goroutine.
func (l *Log) Append(ev core.StoreEvent) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("storelog: closed")
	}
	if l.err != nil {
		return l.err
	}
	l.queue = append(l.queue, ev)
	l.pending++
	l.cond.Signal()
	return nil
}

// Seal requests a snapshot record at this quiescence point; the writer
// skips it unless SealEvery events accumulated since the last snapshot.
func (l *Log) Seal() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("storelog: closed")
	}
	if l.err != nil {
		return l.err
	}
	l.sealReq = true
	l.cond.Signal()
	return nil
}

// Flush blocks until every event appended before the call is written and
// synced to disk.
func (l *Log) Flush() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("storelog: closed")
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	l.flushers = append(l.flushers, ch)
	l.cond.Signal()
	l.mu.Unlock()
	return <-ch
}

// Pending reports events not yet handed to the OS.
func (l *Log) Pending() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Close flushes, stops the writer, and closes the file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		err := l.err
		l.mu.Unlock()
		return err
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// run is the writer goroutine: drain the queue, cut requested snapshots,
// answer flush barriers, and exit on close.
func (l *Log) run() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.queue) == 0 && !l.sealReq && len(l.flushers) == 0 && !l.closed {
			l.cond.Wait()
		}
		evs := l.queue
		l.queue = nil
		seal := l.sealReq
		l.sealReq = false
		flushers := l.flushers
		l.flushers = nil
		closed := l.closed
		l.mu.Unlock()

		var err error
		for _, ev := range evs {
			if err = l.writeEvent(ev); err != nil {
				break
			}
		}
		if err == nil && seal {
			err = l.writeSeal()
		}
		if err == nil && (len(flushers) > 0 || closed) {
			err = l.sync()
		}
		l.mu.Lock()
		if err != nil && l.err == nil {
			l.err = err
		}
		l.pending -= len(evs)
		sticky := l.err
		l.mu.Unlock()
		for _, ch := range flushers {
			ch <- sticky
		}
		if closed {
			l.w.Flush()
			l.f.Close()
			return
		}
	}
}

func (l *Log) sync() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if l.opts.NoSync {
		return nil
	}
	return l.f.Sync()
}

// writeRecord frames payload as len|payload|crc.
func (l *Log) writeRecord(payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := l.w.Write(crc[:])
	return err
}

func (l *Log) writeEvent(ev core.StoreEvent) error {
	l.state.Apply(ev)
	l.sinceSeal++
	payload := appendEvent([]byte{byte(ev.Kind)}, ev)
	return l.writeRecord(payload)
}

func (l *Log) writeSeal() error {
	if l.opts.SealEvery < 0 || l.sinceSeal < l.opts.SealEvery {
		return nil
	}
	l.sinceSeal = 0
	return l.writeRecord(appendState([]byte{recSeal}, l.state))
}

// --- record encoding ---

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func decodeFloat(b []byte) (float64, int, error) {
	if len(b) < 8 {
		return 0, 0, fmt.Errorf("storelog: short float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), 8, nil
}

func appendEvent(b []byte, ev core.StoreEvent) []byte {
	b = data.AppendString(b, ev.Node)
	b = data.AppendTuple(b, ev.Tuple)
	b = data.AppendString(b, ev.Prov)
	return appendFloat(b, ev.At)
}

// decodeEvent decodes an event payload after its kind byte.
func decodeEvent(kind core.EventKind, b []byte) (core.StoreEvent, error) {
	ev := core.StoreEvent{Kind: kind}
	node, n, err := data.DecodeString(b)
	if err != nil {
		return ev, err
	}
	ev.Node = node
	tu, m, err := data.DecodeTuple(b[n:])
	if err != nil {
		return ev, err
	}
	n += m
	prov, m, err := data.DecodeString(b[n:])
	if err != nil {
		return ev, err
	}
	n += m
	ev.Tuple, ev.Prov = tu, prov
	at, m, err := decodeFloat(b[n:])
	if err != nil {
		return ev, err
	}
	n += m
	if n != len(b) {
		return ev, fmt.Errorf("storelog: %d trailing event bytes", len(b)-n)
	}
	ev.At = at
	return ev, nil
}

func appendRow(b []byte, row core.StoredRow, stale bool) []byte {
	b = data.AppendTuple(b, row.Tuple)
	b = data.AppendString(b, row.Prov)
	b = appendFloat(b, row.At)
	if stale {
		b = appendFloat(b, row.StaleAt)
	}
	return b
}

func decodeRow(b []byte, stale bool) (core.StoredRow, int, error) {
	var row core.StoredRow
	tu, n, err := data.DecodeTuple(b)
	if err != nil {
		return row, 0, err
	}
	prov, m, err := data.DecodeString(b[n:])
	if err != nil {
		return row, 0, err
	}
	n += m
	at, m, err := decodeFloat(b[n:])
	if err != nil {
		return row, 0, err
	}
	n += m
	row = core.StoredRow{Tuple: tu, Prov: prov, At: at}
	if stale {
		sat, m, err := decodeFloat(b[n:])
		if err != nil {
			return row, 0, err
		}
		n += m
		row.StaleAt = sat
	}
	return row, n, nil
}

// appendState encodes a full StoreState in sorted order (node names, then
// row keys), keeping snapshot bytes deterministic for identical states.
func appendState(b []byte, s *core.StoreState) []byte {
	b = appendFloat(b, s.Clock)
	names := make([]string, 0, len(s.Nodes))
	for name := range s.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binary.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		ns := s.Nodes[name]
		b = data.AppendString(b, name)
		b = appendRows(b, ns.Rows, false)
		b = appendRows(b, ns.Stale, true)
	}
	return b
}

func appendRows(b []byte, rows map[string]core.StoredRow, stale bool) []byte {
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b = binary.AppendUvarint(b, uint64(len(keys)))
	for _, k := range keys {
		b = appendRow(b, rows[k], stale)
	}
	return b
}

func decodeState(b []byte) (*core.StoreState, error) {
	s := core.NewStoreState()
	clock, n, err := decodeFloat(b)
	if err != nil {
		return nil, err
	}
	s.Clock = clock
	nn, m := binary.Uvarint(b[n:])
	if m <= 0 || nn > uint64(len(b)) {
		return nil, fmt.Errorf("storelog: corrupt snapshot node count")
	}
	n += m
	for i := uint64(0); i < nn; i++ {
		name, m, err := data.DecodeString(b[n:])
		if err != nil {
			return nil, err
		}
		n += m
		ns := &core.NodeState{Rows: map[string]core.StoredRow{}, Stale: map[string]core.StoredRow{}}
		for _, stale := range []bool{false, true} {
			cnt, m := binary.Uvarint(b[n:])
			if m <= 0 || cnt > uint64(len(b)) {
				return nil, fmt.Errorf("storelog: corrupt snapshot row count")
			}
			n += m
			dst := ns.Rows
			if stale {
				dst = ns.Stale
			}
			for j := uint64(0); j < cnt; j++ {
				row, m, err := decodeRow(b[n:], stale)
				if err != nil {
					return nil, err
				}
				n += m
				dst[row.Tuple.Key()] = row //provlint:allow keystring snapshot rows replay into the store-state map, which is keyed on the canonical bytes by contract
			}
		}
		s.Nodes[name] = ns
	}
	if n != len(b) {
		return nil, fmt.Errorf("storelog: %d trailing snapshot bytes", len(b)-n)
	}
	return s, nil
}

// --- recovery ---

// RecoverStats describes what a recovery scan found.
type RecoverStats struct {
	// Records is the number of valid records in the kept prefix.
	Records int
	// Events is the number of event records (Records minus seals).
	Events int
	// Seals counts snapshot records.
	Seals int
	// SnapshotUsed reports whether replay started from a seal snapshot
	// (false = the whole event log was replayed).
	SnapshotUsed bool
	// TailEvents is the number of events replayed after the last
	// snapshot (all of them when SnapshotUsed is false).
	TailEvents int
	// ValidBytes is the length of the valid prefix; TornBytes is what a
	// crash left after it (truncated by Open, ignored by Recover).
	ValidBytes int64
	TornBytes  int64
}

// Recover reads the log under dir read-only and replays it into a
// StoreState: the last valid seal snapshot plus the events after it. A
// missing file recovers to the empty state. Corruption mid-file stops
// the scan there (crash-torn tail).
func Recover(dir string) (*core.StoreState, RecoverStats, error) {
	return recoverFile(filepath.Join(dir, FileName))
}

func recoverFile(path string) (*core.StoreState, RecoverStats, error) {
	var stats RecoverStats
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return core.NewStoreState(), stats, nil
	}
	if err != nil {
		return nil, stats, err
	}

	// Scan the valid prefix, remembering the last intact snapshot and
	// the events after it.
	var base *core.StoreState
	var tail []core.StoreEvent
	off := int64(0)
	for {
		payload, next, ok := readRecord(raw, off)
		if !ok {
			break
		}
		kind := payload[0]
		switch {
		case kind == recSeal:
			s, err := decodeState(payload[1:])
			if err != nil {
				// Structurally corrupt despite a good CRC: treat as torn.
				goto done
			}
			base, tail = s, nil
			stats.Seals++
		case kind <= byte(core.EvProv):
			ev, err := decodeEvent(core.EventKind(kind), payload[1:])
			if err != nil {
				goto done
			}
			tail = append(tail, ev)
			stats.Events++
		default:
			goto done // unknown record kind: stop before it
		}
		stats.Records++
		off = next
	}
done:
	stats.ValidBytes = off
	stats.TornBytes = int64(len(raw)) - off
	stats.SnapshotUsed = base != nil
	stats.TailEvents = len(tail)
	state := base
	if state == nil {
		state = core.NewStoreState()
	}
	for _, ev := range tail {
		state.Apply(ev)
	}
	return state, stats, nil
}

// readRecord parses one len|payload|crc record at off, reporting the
// payload, the next offset, and whether the record was intact.
func readRecord(raw []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+4 > int64(len(raw)) {
		return nil, off, false
	}
	n := int64(binary.LittleEndian.Uint32(raw[off:]))
	if n < 1 || n > maxRecord || off+4+n+4 > int64(len(raw)) {
		return nil, off, false
	}
	payload = raw[off+4 : off+4+n]
	want := binary.LittleEndian.Uint32(raw[off+4+n:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, off, false
	}
	return payload, off + 4 + n + 4, true
}
