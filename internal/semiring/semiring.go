// Package semiring implements provenance semirings (Green, Karvounarakis,
// Tannen, PODS 2007) as used by the paper for condensed and quantifiable
// provenance (§4.4, §4.5).
//
// Derivations are recorded as provenance polynomials in N[X]: variables are
// the identities of base-tuple assertions (in SeNDlog, the principals that
// said them), + is alternative derivation (union), and · is joint use in one
// rule body (join). Evaluating a polynomial under different semirings
// yields the paper's quantifiable notions of trust:
//
//   - the boolean semiring answers "is the tuple derivable from trusted
//     inputs?";
//   - the counting semiring counts the number of distinct derivations;
//   - the trust (max/min) semiring computes the paper's security-level
//     example max(2, min(2,1)) = 2;
//   - the tropical (min/+) semiring computes a minimal-cost derivation.
package semiring

import "math"

// Semiring is a commutative semiring over T: (T, Add, Zero) is a
// commutative monoid, (T, Mul, One) is a commutative monoid, Mul distributes
// over Add, and Zero annihilates Mul.
type Semiring[T any] interface {
	Zero() T
	One() T
	Add(a, b T) T
	Mul(a, b T) T
}

// Bool is the boolean semiring ({false,true}, ∨, ∧): a polynomial evaluates
// to true iff the tuple is derivable from the variables assigned true.
type Bool struct{}

// Zero returns false.
func (Bool) Zero() bool { return false }

// One returns true.
func (Bool) One() bool { return true }

// Add is logical or.
func (Bool) Add(a, b bool) bool { return a || b }

// Mul is logical and.
func (Bool) Mul(a, b bool) bool { return a && b }

// Count is the counting semiring (ℕ, +, ×): a polynomial evaluates to the
// number of distinct derivations, the "count" notion of §4.5 (from
// Gupta/Mumick/Subrahmanian view maintenance).
type Count struct{}

// Zero returns 0.
func (Count) Zero() int64 { return 0 }

// One returns 1.
func (Count) One() int64 { return 1 }

// Add is addition.
func (Count) Add(a, b int64) int64 { return a + b }

// Mul is multiplication.
func (Count) Mul(a, b int64) int64 { return a * b }

// Trust levels for the Trust semiring. Higher is more trusted.
const (
	// TrustZero is the additive identity: an underivable tuple.
	TrustZero = math.MinInt64
	// TrustOne is the multiplicative identity: an axiomatically trusted
	// input.
	TrustOne = math.MaxInt64
)

// Trust is the security-level semiring (levels ∪ {±∞}, max, min) of §4.5:
// the trust of a derivation is the minimum level among the facts it joins,
// and the trust of a tuple is the maximum over its alternative derivations.
type Trust struct{}

// Zero returns TrustZero (no derivation).
func (Trust) Zero() int64 { return TrustZero }

// One returns TrustOne (fully trusted).
func (Trust) One() int64 { return TrustOne }

// Add is max: alternative derivations take the more trusted one.
func (Trust) Add(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Mul is min: a joint derivation is only as trusted as its weakest input.
func (Trust) Mul(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Tropical is the (min, +) semiring over costs: a polynomial evaluates to
// the cost of the cheapest derivation when each variable is assigned the
// cost of using its base tuple.
type Tropical struct{}

// Zero returns +Inf (no derivation).
func (Tropical) Zero() float64 { return math.Inf(1) }

// One returns 0 (a free derivation step).
func (Tropical) One() float64 { return 0 }

// Add is min.
func (Tropical) Add(a, b float64) float64 { return math.Min(a, b) }

// Mul is addition of costs.
func (Tropical) Mul(a, b float64) float64 { return a + b }

// Fuzzy is the Viterbi-style ([0,1], max, ×) semiring: a polynomial
// evaluates to the confidence of the most credible derivation.
type Fuzzy struct{}

// Zero returns 0.
func (Fuzzy) Zero() float64 { return 0 }

// One returns 1.
func (Fuzzy) One() float64 { return 1 }

// Add is max.
func (Fuzzy) Add(a, b float64) float64 { return math.Max(a, b) }

// Mul is product.
func (Fuzzy) Mul(a, b float64) float64 { return a * b }

// AddN returns a added to itself n times under s. It is used to apply a
// polynomial coefficient. Idempotent semirings (Bool, Trust, Tropical,
// Fuzzy) short-circuit to a single term.
func AddN[T any](s Semiring[T], a T, n int64) T {
	if n <= 0 {
		return s.Zero()
	}
	switch any(s).(type) {
	case Bool, Trust, Tropical, Fuzzy:
		return a
	}
	// Double-and-add to stay cheap for large counts.
	acc := s.Zero()
	base := a
	for n > 0 {
		if n&1 == 1 {
			acc = s.Add(acc, base)
		}
		base = s.Add(base, base)
		n >>= 1
	}
	return acc
}

// Pow returns a multiplied by itself n times under s (a^0 = One).
func Pow[T any](s Semiring[T], a T, n int) T {
	r := s.One()
	for i := 0; i < n; i++ {
		r = s.Mul(r, a)
	}
	return r
}
