package semiring

import (
	"sort"
	"strconv"
	"strings"

	"provnet/internal/bdd"
)

// Poly is a provenance polynomial in N[X]: a sum of monomials with natural
// coefficients, where each monomial is a product of variables with natural
// exponents. It is the most general ("how"-provenance) annotation; every
// other provenance notion in the paper is a homomorphic image of it.
//
// Poly values are immutable: operations return new polynomials.
type Poly struct {
	terms map[string]term // keyed by monomial key
}

type term struct {
	coeff int64
	vars  []factor // sorted by name
}

type factor struct {
	name string
	exp  int
}

func (t term) key() string {
	var b strings.Builder
	for _, f := range t.vars {
		b.WriteString(strconv.Itoa(len(f.name)))
		b.WriteByte(':')
		b.WriteString(f.name)
		b.WriteByte('^')
		b.WriteString(strconv.Itoa(f.exp))
	}
	return b.String()
}

// Zero returns the zero polynomial (no derivations).
func Zero() Poly { return Poly{} }

// One returns the unit polynomial (an axiomatic derivation using no base
// tuples).
func One() Poly {
	return Poly{terms: map[string]term{"": {coeff: 1}}}
}

// Var returns the polynomial consisting of the single variable name.
func Var(name string) Poly {
	t := term{coeff: 1, vars: []factor{{name: name, exp: 1}}}
	return Poly{terms: map[string]term{t.key(): t}}
}

// IsZero reports whether p has no terms.
func (p Poly) IsZero() bool { return len(p.terms) == 0 }

// IsOne reports whether p is exactly the unit polynomial.
func (p Poly) IsOne() bool {
	if len(p.terms) != 1 {
		return false
	}
	t, ok := p.terms[""]
	return ok && t.coeff == 1
}

// NumTerms returns the number of distinct monomials.
func (p Poly) NumTerms() int { return len(p.terms) }

// Add returns p + q (alternative derivations).
func (p Poly) Add(q Poly) Poly {
	if p.IsZero() {
		return q
	}
	if q.IsZero() {
		return p
	}
	out := make(map[string]term, len(p.terms)+len(q.terms))
	for k, t := range p.terms {
		out[k] = t
	}
	for k, t := range q.terms {
		if prev, ok := out[k]; ok {
			prev.coeff += t.coeff
			out[k] = prev
		} else {
			out[k] = t
		}
	}
	return Poly{terms: out}
}

// Mul returns p · q (joint use of derivations in one rule body).
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Zero()
	}
	if p.IsOne() {
		return q
	}
	if q.IsOne() {
		return p
	}
	out := make(map[string]term, len(p.terms)*len(q.terms))
	for _, a := range p.terms {
		for _, b := range q.terms {
			m := mulTerm(a, b)
			k := m.key()
			if prev, ok := out[k]; ok {
				prev.coeff += m.coeff
				out[k] = prev
			} else {
				out[k] = m
			}
		}
	}
	return Poly{terms: out}
}

func mulTerm(a, b term) term {
	out := term{coeff: a.coeff * b.coeff}
	i, j := 0, 0
	for i < len(a.vars) && j < len(b.vars) {
		switch {
		case a.vars[i].name == b.vars[j].name:
			out.vars = append(out.vars, factor{a.vars[i].name, a.vars[i].exp + b.vars[j].exp})
			i++
			j++
		case a.vars[i].name < b.vars[j].name:
			out.vars = append(out.vars, a.vars[i])
			i++
		default:
			out.vars = append(out.vars, b.vars[j])
			j++
		}
	}
	out.vars = append(out.vars, a.vars[i:]...)
	out.vars = append(out.vars, b.vars[j:]...)
	return out
}

// Support returns the sorted set of variables appearing in p.
func (p Poly) Support() []string {
	set := map[string]bool{}
	for _, t := range p.terms {
		for _, f := range t.vars {
			set[f.name] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Equal reports whether p and q are identical polynomials (same monomials
// with same coefficients).
func (p Poly) Equal(q Poly) bool {
	if len(p.terms) != len(q.terms) {
		return false
	}
	for k, t := range p.terms {
		u, ok := q.terms[k]
		if !ok || u.coeff != t.coeff {
			return false
		}
	}
	return true
}

// sortedTerms returns the terms in a deterministic order: by total degree,
// then by key.
func (p Poly) sortedTerms() []term {
	out := make([]term, 0, len(p.terms))
	for _, t := range p.terms {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := degree(out[i]), degree(out[j])
		if di != dj {
			return di < dj
		}
		return out[i].key() < out[j].key()
	})
	return out
}

func degree(t term) int {
	d := 0
	for _, f := range t.vars {
		d += f.exp
	}
	return d
}

// String renders the polynomial in the paper's annotation style, e.g.
// "a + a*b". Coefficients and exponents are shown when non-trivial:
// "2*a + b^2". The zero polynomial renders as "0" and the unit as "1".
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var parts []string
	for _, t := range p.sortedTerms() {
		var fs []string
		if t.coeff != 1 || len(t.vars) == 0 {
			fs = append(fs, strconv.FormatInt(t.coeff, 10))
		}
		for _, f := range t.vars {
			if f.exp == 1 {
				fs = append(fs, f.name)
			} else {
				fs = append(fs, f.name+"^"+strconv.Itoa(f.exp))
			}
		}
		parts = append(parts, strings.Join(fs, "*"))
	}
	return strings.Join(parts, " + ")
}

// Eval evaluates p under the semiring s, assigning each variable the value
// given by assign. This is the semiring homomorphism N[X] → S that yields
// the paper's quantifiable provenance: pass Trust with principal security
// levels to compute max-of-min trust, Count with all-ones to count
// derivations, and so on.
func Eval[T any](p Poly, s Semiring[T], assign func(string) T) T {
	acc := s.Zero()
	for _, t := range p.terms {
		tv := s.One()
		for _, f := range t.vars {
			tv = s.Mul(tv, Pow(s, assign(f.name), f.exp))
		}
		acc = s.Add(acc, AddN(s, tv, t.coeff))
	}
	return acc
}

// ToBDD condenses p into a BDD in manager m: coefficients and exponents are
// dropped (the B[X] image of the polynomial), and BDD reduction applies
// absorption and idempotence — the paper's §4.4 condensation, where
// <a + a*b> becomes <a>.
func (p Poly) ToBDD(m *bdd.Manager) bdd.Node {
	if p.IsZero() {
		return bdd.False
	}
	root := bdd.False
	for _, t := range p.sortedTerms() {
		cube := bdd.True
		for _, f := range t.vars {
			cube = m.And(cube, m.Var(f.name))
		}
		root = m.Or(root, cube)
	}
	return root
}

// FromCubes rebuilds a polynomial (in B[X] form: coefficients 1, exponents
// 1) from a DNF cube list, as produced by bdd.Manager.Cubes. It is used to
// interpret condensed provenance received from the network.
func FromCubes(cubes [][]string) Poly {
	p := Zero()
	for _, cube := range cubes {
		t := One()
		for _, v := range cube {
			t = t.Mul(Var(v))
		}
		p = p.Add(t)
	}
	return p
}

// Votes returns the number of alternative derivations whose variable sets
// are pairwise disjoint-independent in the simple sense used by the paper's
// "vote" notion (§4.5): the number of distinct minimal principal sets that
// assert the tuple. It condenses p (dropping coefficients), extracts the
// minimal cubes, and counts the distinct principals appearing as singleton
// supports plus distinct minimal cubes.
//
// Concretely: Votes is the number of minimal cubes of the condensed
// provenance. A policy "accept if over K principals assert the update" can
// be checked with VotesBy, which counts distinct principals that appear in
// at least one minimal cube all of whose members assert it.
func (p Poly) Votes(m *bdd.Manager) int {
	return len(m.Cubes(p.ToBDD(m)))
}

// MapVars applies a variable renaming to the polynomial, merging
// identically renamed variables. It implements the paper's provenance
// granularity optimization (§5): mapping node principals to their AS
// yields AS-level provenance, e.g. n1 + n2*n3 with {n1,n2}→as1, {n3}→as2
// becomes as1 + as1*as2.
func (p Poly) MapVars(rename func(string) string) Poly {
	out := Zero()
	for _, t := range p.terms {
		mono := One()
		for _, f := range t.vars {
			v := Var(rename(f.name))
			for i := 0; i < f.exp; i++ {
				mono = mono.Mul(v)
			}
		}
		out = out.Add(scale(mono, t.coeff))
	}
	return out
}

// scale multiplies every coefficient of p by k.
func scale(p Poly, k int64) Poly {
	if k == 1 {
		return p
	}
	terms := make(map[string]term, len(p.terms))
	for key, t := range p.terms {
		t.coeff *= k
		terms[key] = t
	}
	return Poly{terms: terms}
}

// MinWitness returns the smallest cube (minimal set of base assertions)
// sufficient to derive the tuple, or nil if p is zero. Ties are broken
// deterministically (lexicographically smallest).
func (p Poly) MinWitness(m *bdd.Manager) []string {
	cubes := m.Cubes(p.ToBDD(m))
	if len(cubes) == 0 {
		return nil
	}
	return cubes[0]
}
