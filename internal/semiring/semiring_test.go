package semiring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// checkLaws verifies the commutative-semiring axioms for s over the sample
// values gen produces.
func checkLaws[T comparable](t *testing.T, name string, s Semiring[T], gen func(r *rand.Rand) T) {
	t.Helper()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := gen(r), gen(r), gen(r)
		// Additive commutative monoid.
		if s.Add(a, b) != s.Add(b, a) {
			return false
		}
		if s.Add(s.Add(a, b), c) != s.Add(a, s.Add(b, c)) {
			return false
		}
		if s.Add(a, s.Zero()) != a {
			return false
		}
		// Multiplicative commutative monoid.
		if s.Mul(a, b) != s.Mul(b, a) {
			return false
		}
		if s.Mul(s.Mul(a, b), c) != s.Mul(a, s.Mul(b, c)) {
			return false
		}
		if s.Mul(a, s.One()) != a {
			return false
		}
		// Distributivity and annihilation.
		if s.Mul(a, s.Add(b, c)) != s.Add(s.Mul(a, b), s.Mul(a, c)) {
			return false
		}
		if s.Mul(a, s.Zero()) != s.Zero() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("%s semiring laws: %v", name, err)
	}
}

func TestBoolLaws(t *testing.T) {
	checkLaws[bool](t, "Bool", Bool{}, func(r *rand.Rand) bool { return r.Intn(2) == 0 })
}

func TestCountLaws(t *testing.T) {
	checkLaws[int64](t, "Count", Count{}, func(r *rand.Rand) int64 { return r.Int63n(100) })
}

func TestTrustLaws(t *testing.T) {
	checkLaws[int64](t, "Trust", Trust{}, func(r *rand.Rand) int64 {
		switch r.Intn(5) {
		case 0:
			return TrustZero
		case 1:
			return TrustOne
		default:
			return r.Int63n(10)
		}
	})
}

func TestTropicalLaws(t *testing.T) {
	checkLaws[float64](t, "Tropical", Tropical{}, func(r *rand.Rand) float64 {
		if r.Intn(5) == 0 {
			return math.Inf(1)
		}
		return float64(r.Intn(50))
	})
}

func TestFuzzyLaws(t *testing.T) {
	// Restrict to a small set of exact dyadic values so floating point
	// products are exact and associativity holds exactly.
	vals := []float64{0, 0.25, 0.5, 1}
	checkLaws[float64](t, "Fuzzy", Fuzzy{}, func(r *rand.Rand) float64 { return vals[r.Intn(len(vals))] })
}

func TestAddN(t *testing.T) {
	if got := AddN[int64](Count{}, 3, 4); got != 12 {
		t.Errorf("AddN count = %d, want 12", got)
	}
	if got := AddN[int64](Count{}, 3, 0); got != 0 {
		t.Errorf("AddN count 0 times = %d", got)
	}
	if got := AddN[int64](Count{}, 1, 1000000); got != 1000000 {
		t.Errorf("AddN large = %d", got)
	}
	// Idempotent semirings ignore the multiplicity.
	if got := AddN[int64](Trust{}, 5, 100); got != 5 {
		t.Errorf("AddN trust = %d, want 5", got)
	}
	if got := AddN[bool](Bool{}, true, 7); got != true {
		t.Errorf("AddN bool = %v", got)
	}
}

func TestPow(t *testing.T) {
	if got := Pow[int64](Count{}, 2, 10); got != 1024 {
		t.Errorf("Pow = %d", got)
	}
	if got := Pow[int64](Count{}, 2, 0); got != 1 {
		t.Errorf("Pow^0 = %d", got)
	}
	if got := Pow[int64](Trust{}, 3, 5); got != 3 {
		t.Errorf("Trust Pow = %d", got)
	}
}

func TestTrustPaperExample(t *testing.T) {
	// §4.5: <a + a*b> with level(a)=2, level(b)=1 evaluates to
	// max(2, min(2,1)) = 2.
	s := Trust{}
	la, lb := int64(2), int64(1)
	got := s.Add(la, s.Mul(la, lb))
	if got != 2 {
		t.Fatalf("trust(a + a*b) = %d, want 2", got)
	}
}
