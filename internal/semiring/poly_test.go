package semiring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"provnet/internal/bdd"
)

func TestPolyBasics(t *testing.T) {
	if !Zero().IsZero() {
		t.Error("Zero().IsZero()")
	}
	if !One().IsOne() {
		t.Error("One().IsOne()")
	}
	if Var("a").IsZero() || Var("a").IsOne() {
		t.Error("Var is neither zero nor one")
	}
	if Zero().String() != "0" {
		t.Errorf("Zero string = %q", Zero().String())
	}
	if One().String() != "1" {
		t.Errorf("One string = %q", One().String())
	}
	if Var("a").String() != "a" {
		t.Errorf("Var string = %q", Var("a").String())
	}
}

func TestPolyAddMul(t *testing.T) {
	a, b, c := Var("a"), Var("b"), Var("c")
	p := a.Add(a.Mul(b))
	if got := p.String(); got != "a + a*b" {
		t.Errorf("a + a*b renders as %q", got)
	}
	q := a.Mul(b.Add(c))
	want := a.Mul(b).Add(a.Mul(c))
	if !q.Equal(want) {
		t.Errorf("distributivity: %s != %s", q, want)
	}
	if got := a.Add(a).String(); got != "2*a" {
		t.Errorf("a+a = %q, want 2*a", got)
	}
	if got := a.Mul(a).String(); got != "a^2" {
		t.Errorf("a*a = %q, want a^2", got)
	}
	if !a.Mul(Zero()).IsZero() {
		t.Error("a*0 = 0")
	}
	if !a.Mul(One()).Equal(a) {
		t.Error("a*1 = a")
	}
	if !a.Add(Zero()).Equal(a) {
		t.Error("a+0 = a")
	}
}

func TestPolySupport(t *testing.T) {
	p := Var("b").Mul(Var("a")).Add(Var("c"))
	got := p.Support()
	want := []string{"a", "b", "c"}
	if len(got) != 3 {
		t.Fatalf("Support = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v", got)
		}
	}
	if s := Zero().Support(); len(s) != 0 {
		t.Errorf("Zero support = %v", s)
	}
}

func TestEvalBool(t *testing.T) {
	p := Var("a").Add(Var("a").Mul(Var("b")))
	trustA := func(v string) bool { return v == "a" }
	trustB := func(v string) bool { return v == "b" }
	if !Eval[bool](p, Bool{}, trustA) {
		t.Error("derivable from a alone")
	}
	if Eval[bool](p, Bool{}, trustB) {
		t.Error("not derivable from b alone")
	}
	if Eval[bool](Zero(), Bool{}, trustA) {
		t.Error("zero never derivable")
	}
	if !Eval[bool](One(), Bool{}, func(string) bool { return false }) {
		t.Error("one always derivable")
	}
}

func TestEvalCount(t *testing.T) {
	// a + a*b has two derivations when all inputs present.
	p := Var("a").Add(Var("a").Mul(Var("b")))
	ones := func(string) int64 { return 1 }
	if got := Eval[int64](p, Count{}, ones); got != 2 {
		t.Errorf("count = %d, want 2", got)
	}
	// 3 copies of base tuple a: a contributes 3, a*b contributes 3.
	three := func(v string) int64 {
		if v == "a" {
			return 3
		}
		return 1
	}
	if got := Eval[int64](p, Count{}, three); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
}

func TestEvalTrustPaperExample(t *testing.T) {
	// §4.5: <a+a*b>, level(a)=2, level(b)=1 → max(2, min(2,1)) = 2.
	p := Var("a").Add(Var("a").Mul(Var("b")))
	levels := map[string]int64{"a": 2, "b": 1}
	got := Eval[int64](p, Trust{}, func(v string) int64 { return levels[v] })
	if got != 2 {
		t.Fatalf("trust = %d, want 2", got)
	}
	// If a is only level 1, the best derivation is min(1,·) = 1.
	levels["a"] = 1
	if got := Eval[int64](p, Trust{}, func(v string) int64 { return levels[v] }); got != 1 {
		t.Fatalf("trust = %d, want 1", got)
	}
}

func TestEvalTropical(t *testing.T) {
	p := Var("a").Add(Var("b").Mul(Var("c")))
	costs := map[string]float64{"a": 10, "b": 2, "c": 3}
	got := Eval[float64](p, Tropical{}, func(v string) float64 { return costs[v] })
	if got != 5 {
		t.Errorf("tropical = %v, want 5 (b+c)", got)
	}
}

func TestToBDDCondensation(t *testing.T) {
	// The paper's condensation: <a + a*b> → <a>.
	m := bdd.New()
	p := Var("a").Add(Var("a").Mul(Var("b")))
	n := p.ToBDD(m)
	if got := m.Expr(n); got != "a" {
		t.Fatalf("condensed = %q, want a", got)
	}
	// Coefficients and exponents are dropped: 2*a^2 condenses to a.
	q := Var("a").Mul(Var("a")).Add(Var("a").Mul(Var("a")))
	if got := m.Expr(q.ToBDD(m)); got != "a" {
		t.Fatalf("condensed 2*a^2 = %q, want a", got)
	}
}

func TestFromCubesRoundTrip(t *testing.T) {
	m := bdd.New()
	p := Var("a").Mul(Var("b")).Add(Var("c"))
	cubes := m.Cubes(p.ToBDD(m))
	q := FromCubes(cubes)
	if !q.Equal(p) {
		t.Fatalf("FromCubes = %s, want %s", q, p)
	}
	if !FromCubes(nil).IsZero() {
		t.Error("FromCubes(nil) should be zero")
	}
}

func TestVotesAndMinWitness(t *testing.T) {
	m := bdd.New()
	// Two independent ways: a alone, or b*c jointly.
	p := Var("a").Add(Var("b").Mul(Var("c")))
	if got := p.Votes(m); got != 2 {
		t.Errorf("votes = %d, want 2", got)
	}
	// a + a*b has a single minimal way.
	q := Var("a").Add(Var("a").Mul(Var("b")))
	if got := q.Votes(m); got != 1 {
		t.Errorf("votes = %d, want 1", got)
	}
	w := p.MinWitness(m)
	if len(w) != 1 || w[0] != "a" {
		t.Errorf("MinWitness = %v, want [a]", w)
	}
	if Zero().MinWitness(m) != nil {
		t.Error("MinWitness of zero should be nil")
	}
}

func randPoly(r *rand.Rand, depth int) Poly {
	vars := []string{"a", "b", "c", "d"}
	if depth == 0 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return Zero()
		case 1:
			return One()
		default:
			return Var(vars[r.Intn(len(vars))])
		}
	}
	if r.Intn(2) == 0 {
		return randPoly(r, depth-1).Add(randPoly(r, depth-1))
	}
	return randPoly(r, depth-1).Mul(randPoly(r, depth-1))
}

func TestQuickPolyRingLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := randPoly(r, 3), randPoly(r, 3), randPoly(r, 3)
		if !p.Add(q).Equal(q.Add(p)) {
			return false
		}
		if !p.Mul(q).Equal(q.Mul(p)) {
			return false
		}
		if !p.Add(q).Add(s).Equal(p.Add(q.Add(s))) {
			return false
		}
		if !p.Mul(q).Mul(s).Equal(p.Mul(q.Mul(s))) {
			return false
		}
		if !p.Mul(q.Add(s)).Equal(p.Mul(q).Add(p.Mul(s))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEvalIsHomomorphism(t *testing.T) {
	// Eval must commute with Add and Mul, for both Count and Trust.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := randPoly(r, 3), randPoly(r, 3)
		assignC := func(v string) int64 { return int64(len(v)%3 + 1) }
		c := Count{}
		if Eval[int64](p.Add(q), c, assignC) != c.Add(Eval[int64](p, c, assignC), Eval[int64](q, c, assignC)) {
			return false
		}
		if Eval[int64](p.Mul(q), c, assignC) != c.Mul(Eval[int64](p, c, assignC), Eval[int64](q, c, assignC)) {
			return false
		}
		levels := map[string]int64{"a": 1, "b": 2, "c": 3, "d": 4}
		assignT := func(v string) int64 { return levels[v] }
		tr := Trust{}
		if Eval[int64](p.Add(q), tr, assignT) != tr.Add(Eval[int64](p, tr, assignT), Eval[int64](q, tr, assignT)) {
			return false
		}
		if Eval[int64](p.Mul(q), tr, assignT) != tr.Mul(Eval[int64](p, tr, assignT), Eval[int64](q, tr, assignT)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCondensationPreservesBoolSemantics(t *testing.T) {
	// Condensing to a BDD and evaluating must agree with evaluating the
	// polynomial under the boolean semiring, for every assignment.
	vars := []string{"a", "b", "c", "d"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randPoly(r, 3)
		m := bdd.New()
		n := p.ToBDD(m)
		for mask := 0; mask < 1<<len(vars); mask++ {
			am := map[string]bool{}
			for i, v := range vars {
				am[v] = mask&(1<<i) != 0
			}
			want := Eval[bool](p, Bool{}, func(v string) bool { return am[v] })
			if m.Eval(n, am) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
