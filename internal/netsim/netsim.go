// Package netsim is the simulated network substrate. The paper's
// evaluation ran up to 100 P2 processes on one machine exchanging signed
// tuples; here the same dataflow runs as engines connected by an in-memory
// message fabric with exact byte accounting — the source of the bandwidth
// numbers in Figure 4.
//
// Delivery is deterministic: messages are queued per destination in send
// order and drained by the round-driven scheduler in internal/core. Every
// message is charged its payload size plus a fixed header overhead
// (modelling IP+UDP framing, as P2 used UDP).
package netsim

import (
	"fmt"
	"sort"
)

// HeaderOverhead is the per-message framing charge in bytes (IPv4 + UDP
// headers).
const HeaderOverhead = 28

// Message is one transport datagram.
type Message struct {
	From, To string
	Payload  []byte
}

// Size returns the charged size of the message.
func (m Message) Size() int { return len(m.Payload) + HeaderOverhead }

// Stats aggregates transport activity.
type Stats struct {
	Messages   int64
	Bytes      int64 // includes header overhead
	DroppedMsg int64 // sends to unknown nodes
}

// Network is the in-memory fabric connecting named nodes.
type Network struct {
	queues map[string][]Message
	order  []string // node registration order (scheduler determinism)
	// linkBytes tracks per-directed-pair traffic for granularity
	// experiments (§5): key "from->to".
	linkBytes map[string]int64
	stats     Stats
}

// New creates an empty network.
func New() *Network {
	return &Network{
		queues:    make(map[string][]Message),
		linkBytes: make(map[string]int64),
	}
}

// AddNode registers a node. Registration order defines the scheduler's
// round order.
func (n *Network) AddNode(name string) {
	if _, ok := n.queues[name]; ok {
		return
	}
	n.queues[name] = nil
	n.order = append(n.order, name)
}

// Nodes returns the registered node names in registration order.
func (n *Network) Nodes() []string {
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// HasNode reports whether name is registered.
func (n *Network) HasNode(name string) bool {
	_, ok := n.queues[name]
	return ok
}

// Send enqueues a message, charging its bytes. Sends to unregistered
// nodes are counted as drops and return an error.
func (n *Network) Send(from, to string, payload []byte) error {
	if _, ok := n.queues[to]; !ok {
		n.stats.DroppedMsg++
		return fmt.Errorf("netsim: send to unknown node %q", to)
	}
	msg := Message{From: from, To: to, Payload: payload}
	n.queues[to] = append(n.queues[to], msg)
	n.stats.Messages++
	n.stats.Bytes += int64(msg.Size())
	n.linkBytes[from+"->"+to] += int64(msg.Size())
	return nil
}

// Drain removes and returns all messages queued for node to.
func (n *Network) Drain(to string) []Message {
	msgs := n.queues[to]
	n.queues[to] = nil
	return msgs
}

// PendingCount returns the number of undelivered messages.
func (n *Network) PendingCount() int {
	total := 0
	for _, q := range n.queues {
		total += len(q)
	}
	return total
}

// Stats returns a copy of the transport counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the counters (per-experiment runs).
func (n *Network) ResetStats() {
	n.stats = Stats{}
	n.linkBytes = make(map[string]int64)
}

// LinkTraffic describes bytes carried on one directed pair.
type LinkTraffic struct {
	From, To string
	Bytes    int64
}

// TopTalkers returns the k busiest directed pairs, descending by bytes.
func (n *Network) TopTalkers(k int) []LinkTraffic {
	out := make([]LinkTraffic, 0, len(n.linkBytes))
	for key, b := range n.linkBytes {
		var from, to string
		for i := 0; i+1 < len(key); i++ {
			if key[i] == '-' && key[i+1] == '>' {
				from, to = key[:i], key[i+2:]
				break
			}
		}
		out = append(out, LinkTraffic{From: from, To: to, Bytes: b})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
