// Package netsim is the simulated network substrate — the default
// implementation of internal/core's Transport interface (its TCP
// sibling is internal/nettcp). The paper's evaluation ran up to 100 P2
// processes on one machine exchanging signed tuples; here the same
// dataflow runs as engines connected by an in-memory message fabric
// with exact byte accounting — the source of the bandwidth numbers in
// Figure 4.
//
// Delivery is deterministic: messages are queued per destination and
// drained by the round-driven scheduler in internal/core in sender
// registration order, then per-sender send order — regardless of which
// goroutines enqueued them, provided each sender name sends from one
// goroutine at a time (as the scheduler's one-worker-per-node phases
// do). The fabric is safe for
// concurrent Send and Drain (per-destination locks, atomic counters), so
// the parallel scheduler can ship exports from all nodes at once. Every
// message is charged its payload size plus a fixed header overhead
// (modelling IP+UDP framing, as P2 used UDP).
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// HeaderOverhead is the per-message framing charge in bytes (IPv4 + UDP
// headers).
const HeaderOverhead = 28

// Message is one transport datagram.
type Message struct {
	From, To string
	Payload  []byte
	// srcIdx and seq order concurrent sends deterministically: sender
	// registration order, then per-sender send order.
	srcIdx int
	seq    uint64
}

// Size returns the charged size of the message.
func (m Message) Size() int { return len(m.Payload) + HeaderOverhead }

// Stats aggregates transport activity. HandshakeMessages/HandshakeBytes
// count the control-plane share of the totals (session handshake frames,
// tagged by the sender); the data-plane share is the difference.
type Stats struct {
	Messages   int64
	Bytes      int64 // includes header overhead
	DroppedMsg int64 // sends to unknown nodes

	HandshakeMessages int64
	HandshakeBytes    int64 // includes header overhead

	// Link-liveness counters, populated only by transports with real
	// connections (nettcp): re-established connections, frames requeued
	// after a write failure, and received frames parked because their
	// destination node is not yet registered. Always zero on the
	// in-memory fabric, so cross-transport Stats comparisons still hold.
	Reconnects int64
	Requeues   int64
	Parked     int64

	// Reliability counters, populated only by transports running the
	// ack/retransmit protocol (nettcp with Reliable set): ack control
	// frames carried on the wire (and their bytes), data frames re-sent
	// after a loss or ack timeout, duplicate frames suppressed by the
	// receive-side sequence window, and sends that blocked on a full
	// retransmit window (backpressure into the scheduler). Always zero
	// on the in-memory fabric, which is lossless by construction.
	AckMessages   int64
	AckBytes      int64
	Retransmits   int64
	DupDropped    int64
	Backpressured int64
}

// endpoint is one registered node's transport state.
type endpoint struct {
	idx int // registration order
	seq atomic.Uint64

	mu    sync.Mutex
	queue []Message
}

// Network is the in-memory fabric connecting named nodes. Send and Drain
// are safe for concurrent use; AddNode is not (register all nodes before
// running traffic).
type Network struct {
	mu    sync.RWMutex // guards nodes/order against AddNode
	nodes map[string]*endpoint
	order []string // node registration order (scheduler determinism)

	messages atomic.Int64
	bytes    atomic.Int64
	dropped  atomic.Int64

	handshakeMsgs  atomic.Int64
	handshakeBytes atomic.Int64

	// linkBytes tracks per-directed-pair traffic for granularity
	// experiments (§5): key "from->to".
	linkMu    sync.Mutex
	linkBytes map[string]int64

	// orphanSeq orders sends from unregistered senders (test traffic
	// injected straight onto the fabric).
	orphanSeq atomic.Uint64
}

// New creates an empty network.
func New() *Network {
	return &Network{
		nodes:     make(map[string]*endpoint),
		linkBytes: make(map[string]int64),
	}
}

// AddNode registers a node. Registration order defines the scheduler's
// round order and the drain order among concurrent senders.
func (n *Network) AddNode(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[name]; ok {
		return
	}
	n.nodes[name] = &endpoint{idx: len(n.order)}
	n.order = append(n.order, name)
}

// Nodes returns the registered node names in registration order.
func (n *Network) Nodes() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, len(n.order))
	copy(out, n.order)
	return out
}

// HasNode reports whether name is registered.
func (n *Network) HasNode(name string) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	_, ok := n.nodes[name]
	return ok
}

// Send enqueues a message, charging its bytes. Sends to unregistered
// nodes are counted as drops and return an error. Safe for concurrent
// use; concurrent sends drain in (sender registration, send order), the
// same order a sequential scheduler would produce.
func (n *Network) Send(from, to string, payload []byte) error {
	return n.SendTagged(from, to, payload, false)
}

// SendTagged is Send with a traffic-class tag: handshake marks
// control-plane datagrams (session handshakes) so the stats split
// handshake from data bytes.
func (n *Network) SendTagged(from, to string, payload []byte, handshake bool) error {
	n.mu.RLock()
	dst, ok := n.nodes[to]
	src := n.nodes[from]
	n.mu.RUnlock()
	if !ok {
		n.dropped.Add(1)
		return fmt.Errorf("netsim: send to unknown node %q", to)
	}
	msg := Message{From: from, To: to, Payload: payload}
	if src != nil {
		msg.srcIdx = src.idx
		msg.seq = src.seq.Add(1)
	} else {
		// Unregistered senders (test traffic injected straight onto the
		// fabric) sort after every registered node, then by name — the
		// shared counter only orders sends within one sender name.
		msg.srcIdx = int(^uint(0) >> 1)
		msg.seq = n.orphanSeq.Add(1)
	}
	n.messages.Add(1)
	n.bytes.Add(int64(msg.Size()))
	if handshake {
		n.handshakeMsgs.Add(1)
		n.handshakeBytes.Add(int64(msg.Size()))
	}
	n.linkMu.Lock()
	n.linkBytes[from+"->"+to] += int64(msg.Size())
	n.linkMu.Unlock()
	dst.mu.Lock()
	dst.queue = append(dst.queue, msg)
	dst.mu.Unlock()
	return nil
}

// Drain removes and returns all messages queued for node to, ordered by
// (sender registration order, per-sender send order) — the order a
// sequential round scheduler produces, whatever goroutines enqueued them.
func (n *Network) Drain(to string) []Message {
	n.mu.RLock()
	dst := n.nodes[to]
	n.mu.RUnlock()
	if dst == nil {
		return nil
	}
	dst.mu.Lock()
	msgs := dst.queue
	dst.queue = nil
	dst.mu.Unlock()
	sort.SliceStable(msgs, func(i, j int) bool {
		if msgs[i].srcIdx != msgs[j].srcIdx {
			return msgs[i].srcIdx < msgs[j].srcIdx
		}
		if msgs[i].From != msgs[j].From { // distinct unregistered senders
			return msgs[i].From < msgs[j].From
		}
		return msgs[i].seq < msgs[j].seq
	})
	return msgs
}

// PendingFor returns the number of undelivered messages queued for one
// node — a per-node backlog gauge for live-network monitoring.
func (n *Network) PendingFor(to string) int {
	n.mu.RLock()
	dst := n.nodes[to]
	n.mu.RUnlock()
	if dst == nil {
		return 0
	}
	dst.mu.Lock()
	defer dst.mu.Unlock()
	return len(dst.queue)
}

// PendingCount returns the number of undelivered messages.
func (n *Network) PendingCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	total := 0
	for _, ep := range n.nodes {
		ep.mu.Lock()
		total += len(ep.queue)
		ep.mu.Unlock()
	}
	return total
}

// Stats returns a copy of the transport counters.
func (n *Network) Stats() Stats {
	return Stats{
		Messages:          n.messages.Load(),
		Bytes:             n.bytes.Load(),
		DroppedMsg:        n.dropped.Load(),
		HandshakeMessages: n.handshakeMsgs.Load(),
		HandshakeBytes:    n.handshakeBytes.Load(),
	}
}

// ResetStats zeroes the counters (per-experiment runs).
func (n *Network) ResetStats() {
	n.messages.Store(0)
	n.bytes.Store(0)
	n.dropped.Store(0)
	n.handshakeMsgs.Store(0)
	n.handshakeBytes.Store(0)
	n.linkMu.Lock()
	n.linkBytes = make(map[string]int64)
	n.linkMu.Unlock()
}

// LinkTraffic describes bytes carried on one directed pair.
type LinkTraffic struct {
	From, To string
	Bytes    int64
}

// TopTalkers returns the k busiest directed pairs, descending by bytes.
func (n *Network) TopTalkers(k int) []LinkTraffic {
	n.linkMu.Lock()
	out := make([]LinkTraffic, 0, len(n.linkBytes))
	for key, b := range n.linkBytes {
		var from, to string
		for i := 0; i+1 < len(key); i++ {
			if key[i] == '-' && key[i+1] == '>' {
				from, to = key[:i], key[i+2:]
				break
			}
		}
		out = append(out, LinkTraffic{From: from, To: to, Bytes: b})
	}
	n.linkMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
