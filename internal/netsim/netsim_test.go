package netsim

import (
	"testing"
)

func TestSendAndDrain(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	if err := n.Send("a", "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", []byte("world!")); err != nil {
		t.Fatal(err)
	}
	msgs := n.Drain("b")
	if len(msgs) != 2 || string(msgs[0].Payload) != "hello" || string(msgs[1].Payload) != "world!" {
		t.Fatalf("drain = %v", msgs)
	}
	if len(n.Drain("b")) != 0 {
		t.Error("drain must clear the queue")
	}
}

func TestByteAccounting(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	n.Send("a", "b", make([]byte, 100))
	n.Send("b", "a", make([]byte, 50))
	st := n.Stats()
	if st.Messages != 2 {
		t.Errorf("messages = %d", st.Messages)
	}
	want := int64(100 + 50 + 2*HeaderOverhead)
	if st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestSendUnknownNode(t *testing.T) {
	n := New()
	n.AddNode("a")
	if err := n.Send("a", "ghost", []byte("x")); err == nil {
		t.Fatal("send to unknown node must fail")
	}
	if n.Stats().DroppedMsg != 1 {
		t.Error("drop must be counted")
	}
}

func TestPendingCount(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	if n.PendingCount() != 0 {
		t.Error("fresh network has no pending messages")
	}
	n.Send("a", "b", []byte("x"))
	if n.PendingCount() != 1 {
		t.Error("pending = 1")
	}
	n.Drain("b")
	if n.PendingCount() != 0 {
		t.Error("drained")
	}
}

func TestNodesOrderAndHasNode(t *testing.T) {
	n := New()
	for _, name := range []string{"c", "a", "b"} {
		n.AddNode(name)
	}
	n.AddNode("a") // duplicate: ignored
	nodes := n.Nodes()
	if len(nodes) != 3 || nodes[0] != "c" || nodes[1] != "a" || nodes[2] != "b" {
		t.Errorf("Nodes = %v", nodes)
	}
	if !n.HasNode("a") || n.HasNode("zzz") {
		t.Error("HasNode")
	}
}

func TestResetStats(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	n.Send("a", "b", []byte("x"))
	n.ResetStats()
	if st := n.Stats(); st.Messages != 0 || st.Bytes != 0 {
		t.Error("ResetStats must zero counters")
	}
}

func TestTopTalkers(t *testing.T) {
	n := New()
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	n.Send("a", "b", make([]byte, 100))
	n.Send("a", "b", make([]byte, 100))
	n.Send("b", "c", make([]byte, 10))
	top := n.TopTalkers(1)
	if len(top) != 1 || top[0].From != "a" || top[0].To != "b" {
		t.Fatalf("TopTalkers = %v", top)
	}
	all := n.TopTalkers(-1)
	if len(all) != 2 {
		t.Fatalf("all talkers = %v", all)
	}
	if all[0].Bytes < all[1].Bytes {
		t.Error("descending order")
	}
}
