package netsim

import (
	"fmt"
	"sync"
	"testing"
)

func TestSendAndDrain(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	if err := n.Send("a", "b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", []byte("world!")); err != nil {
		t.Fatal(err)
	}
	msgs := n.Drain("b")
	if len(msgs) != 2 || string(msgs[0].Payload) != "hello" || string(msgs[1].Payload) != "world!" {
		t.Fatalf("drain = %v", msgs)
	}
	if len(n.Drain("b")) != 0 {
		t.Error("drain must clear the queue")
	}
}

func TestByteAccounting(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	n.Send("a", "b", make([]byte, 100))
	n.Send("b", "a", make([]byte, 50))
	st := n.Stats()
	if st.Messages != 2 {
		t.Errorf("messages = %d", st.Messages)
	}
	want := int64(100 + 50 + 2*HeaderOverhead)
	if st.Bytes != want {
		t.Errorf("bytes = %d, want %d", st.Bytes, want)
	}
}

func TestSendUnknownNode(t *testing.T) {
	n := New()
	n.AddNode("a")
	if err := n.Send("a", "ghost", []byte("x")); err == nil {
		t.Fatal("send to unknown node must fail")
	}
	if n.Stats().DroppedMsg != 1 {
		t.Error("drop must be counted")
	}
}

func TestPendingCount(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	if n.PendingCount() != 0 {
		t.Error("fresh network has no pending messages")
	}
	n.Send("a", "b", []byte("x"))
	if n.PendingCount() != 1 {
		t.Error("pending = 1")
	}
	n.Drain("b")
	if n.PendingCount() != 0 {
		t.Error("drained")
	}
}

func TestPendingFor(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	n.Send("a", "b", []byte("x"))
	n.Send("a", "b", []byte("y"))
	if got := n.PendingFor("b"); got != 2 {
		t.Errorf("PendingFor(b) = %d, want 2", got)
	}
	if got := n.PendingFor("a"); got != 0 {
		t.Errorf("PendingFor(a) = %d, want 0", got)
	}
	if got := n.PendingFor("nope"); got != 0 {
		t.Errorf("PendingFor(unknown) = %d, want 0", got)
	}
	n.Drain("b")
	if got := n.PendingFor("b"); got != 0 {
		t.Errorf("PendingFor(b) after drain = %d, want 0", got)
	}
}

func TestNodesOrderAndHasNode(t *testing.T) {
	n := New()
	for _, name := range []string{"c", "a", "b"} {
		n.AddNode(name)
	}
	n.AddNode("a") // duplicate: ignored
	nodes := n.Nodes()
	if len(nodes) != 3 || nodes[0] != "c" || nodes[1] != "a" || nodes[2] != "b" {
		t.Errorf("Nodes = %v", nodes)
	}
	if !n.HasNode("a") || n.HasNode("zzz") {
		t.Error("HasNode")
	}
}

func TestResetStats(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	n.Send("a", "b", []byte("x"))
	n.ResetStats()
	if st := n.Stats(); st.Messages != 0 || st.Bytes != 0 {
		t.Error("ResetStats must zero counters")
	}
}

func TestTopTalkers(t *testing.T) {
	n := New()
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	n.Send("a", "b", make([]byte, 100))
	n.Send("a", "b", make([]byte, 100))
	n.Send("b", "c", make([]byte, 10))
	top := n.TopTalkers(1)
	if len(top) != 1 || top[0].From != "a" || top[0].To != "b" {
		t.Fatalf("TopTalkers = %v", top)
	}
	all := n.TopTalkers(-1)
	if len(all) != 2 {
		t.Fatalf("all talkers = %v", all)
	}
	if all[0].Bytes < all[1].Bytes {
		t.Error("descending order")
	}
}

// TestConcurrentSendsDrainDeterministically hammers the fabric from many
// goroutines (run with -race) and checks that Drain returns exactly the
// order a sequential scheduler would have produced: sender registration
// order, then per-sender send order.
func TestConcurrentSendsDrainDeterministically(t *testing.T) {
	const senders, perSender = 8, 50
	n := New()
	n.AddNode("sink")
	names := make([]string, senders)
	for i := range names {
		names[i] = fmt.Sprintf("s%02d", i)
		n.AddNode(names[i])
	}
	var wg sync.WaitGroup
	for i, from := range names {
		wg.Add(1)
		go func(i int, from string) {
			defer wg.Done()
			for k := 0; k < perSender; k++ {
				payload := fmt.Sprintf("%s/%03d", from, k)
				if err := n.Send(from, "sink", []byte(payload)); err != nil {
					t.Error(err)
				}
			}
		}(i, from)
	}
	wg.Wait()
	msgs := n.Drain("sink")
	if len(msgs) != senders*perSender {
		t.Fatalf("drained %d messages, want %d", len(msgs), senders*perSender)
	}
	for i, m := range msgs {
		want := fmt.Sprintf("%s/%03d", names[i/perSender], i%perSender)
		if string(m.Payload) != want {
			t.Fatalf("msgs[%d] = %q, want %q", i, m.Payload, want)
		}
	}
	if got := n.Stats().Messages; got != senders*perSender {
		t.Errorf("messages = %d", got)
	}
}

// TestConcurrentStatsAccounting checks byte totals survive concurrent
// senders.
func TestConcurrentStatsAccounting(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 100; k++ {
				n.Send("a", "b", make([]byte, 10))
			}
		}()
	}
	wg.Wait()
	st := n.Stats()
	if st.Messages != 400 || st.Bytes != int64(400*(10+HeaderOverhead)) {
		t.Errorf("stats = %+v", st)
	}
	tt := n.TopTalkers(1)
	if len(tt) != 1 || tt[0].Bytes != st.Bytes {
		t.Errorf("top talkers = %+v", tt)
	}
}

// TestHandshakeTrafficSplit checks the control-plane/data-plane split:
// handshake-tagged sends show up in both the totals and the handshake
// counters, and ResetStats clears them.
func TestHandshakeTrafficSplit(t *testing.T) {
	n := New()
	n.AddNode("a")
	n.AddNode("b")
	if err := n.SendTagged("a", "b", make([]byte, 10), true); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("a", "b", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Messages != 2 || s.HandshakeMessages != 1 {
		t.Errorf("messages = %d/%d handshake, want 2/1", s.Messages, s.HandshakeMessages)
	}
	if want := int64(10 + HeaderOverhead); s.HandshakeBytes != want {
		t.Errorf("handshake bytes = %d, want %d", s.HandshakeBytes, want)
	}
	if data := s.Bytes - s.HandshakeBytes; data != int64(100+HeaderOverhead) {
		t.Errorf("data bytes = %d, want %d", data, 100+HeaderOverhead)
	}
	n.ResetStats()
	if s := n.Stats(); s.HandshakeMessages != 0 || s.HandshakeBytes != 0 {
		t.Errorf("reset left handshake stats %+v", s)
	}
}
