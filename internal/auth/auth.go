// Package auth implements the security principals and the "says"
// authentication operator of SeNDlog (paper §2.2).
//
// The paper notes that the implementation of says depends on the threat
// model: "in a hostile world, says may require digital signatures, while in
// a more benign world, says may simply append a cleartext principal header
// to a message — and this will of course be cheaper." This package provides
// exactly that spectrum as Signer implementations:
//
//   - None: cleartext principal header, zero cryptographic cost;
//   - HMAC: shared-secret MACs, cheap symmetric authentication;
//   - RSA:  per-tuple RSA signatures over SHA-256 digests, the scheme used
//     in the paper's evaluation (OpenSSL-signed tuples in modified P2).
//
// It also maintains the principal directory: names, security levels (for
// the multi-level says of §2.2 and quantifiable provenance of §4.5), and
// key material.
package auth

import (
	"crypto"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sort"
	"sync"
)

// Scheme identifies a says implementation.
type Scheme uint8

// Supported says schemes, from cheapest to most hostile-world.
// SchemeSession is the amortized hostile world: an RSA handshake per
// (src,dst) link, then HMAC session MACs per envelope (see SessionSealer).
const (
	SchemeNone Scheme = iota
	SchemeHMAC
	SchemeRSA
	SchemeSession
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeHMAC:
		return "hmac"
	case SchemeRSA:
		return "rsa"
	case SchemeSession:
		return "session"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Errors returned by verification.
var (
	ErrBadSignature     = errors.New("auth: signature verification failed")
	ErrUnknownPrincipal = errors.New("auth: unknown principal")
)

// Signer implements the says operator for one scheme: it authenticates a
// payload as asserted by a principal and verifies such assertions.
type Signer interface {
	// Scheme identifies the implementation.
	Scheme() Scheme
	// Sign returns an authentication tag binding payload to principal.
	Sign(principal string, payload []byte) ([]byte, error)
	// Verify checks that tag authenticates payload as said by principal.
	Verify(principal string, payload, tag []byte) error
}

// --- None ---

// NoneSigner is the benign-world says: a cleartext principal header and no
// cryptography. Verification always succeeds.
type NoneSigner struct{}

// Scheme returns SchemeNone.
func (NoneSigner) Scheme() Scheme { return SchemeNone }

// Sign returns an empty tag.
func (NoneSigner) Sign(string, []byte) ([]byte, error) { return nil, nil }

// Verify accepts everything.
func (NoneSigner) Verify(string, []byte, []byte) error { return nil }

// --- HMAC ---

// HMACSigner authenticates with per-principal HMAC-SHA256 keys derived
// from a deployment-wide master secret. It models a benign-but-not-open
// world where principals share pairwise trust in the infrastructure.
type HMACSigner struct {
	master []byte
}

// NewHMACSigner creates an HMAC signer from a master secret.
func NewHMACSigner(master []byte) *HMACSigner {
	cp := make([]byte, len(master))
	copy(cp, master)
	return &HMACSigner{master: cp}
}

// Scheme returns SchemeHMAC.
func (s *HMACSigner) Scheme() Scheme { return SchemeHMAC }

func (s *HMACSigner) key(principal string) []byte {
	mac := hmac.New(sha256.New, s.master)
	mac.Write([]byte("key:"))
	mac.Write([]byte(principal))
	return mac.Sum(nil)
}

// Sign returns HMAC-SHA256(key_principal, payload).
func (s *HMACSigner) Sign(principal string, payload []byte) ([]byte, error) {
	mac := hmac.New(sha256.New, s.key(principal))
	mac.Write(payload)
	return mac.Sum(nil), nil
}

// Verify recomputes and compares the MAC in constant time.
func (s *HMACSigner) Verify(principal string, payload, tag []byte) error {
	want, _ := s.Sign(principal, payload)
	if !hmac.Equal(want, tag) {
		return ErrBadSignature
	}
	return nil
}

// --- RSA ---

// DefaultRSABits is the default modulus size. The paper's 2008 evaluation
// used 1024-bit keys (OpenSSL 0.9.8b), which is also the smallest size
// modern crypto/rsa accepts by default; the default here is 2048 so that
// out-of-the-box runs use a currently-recommended size. Experiments
// reproducing the paper's numbers pass KeyBits/SetKeyBits(1024), and
// smaller ablation keys additionally need GODEBUG=rsa1024min=0.
const DefaultRSABits = 2048

// RSASigner implements the hostile-world says: each exported tuple is
// individually signed with the exporting principal's RSA private key
// (SHA-256 + PKCS#1 v1.5) and checked with the corresponding public key on
// import, as in the paper's modified P2.
type RSASigner struct {
	dir *Directory
}

// NewRSASigner creates a signer backed by the directory's key material.
func NewRSASigner(dir *Directory) *RSASigner { return &RSASigner{dir: dir} }

// Scheme returns SchemeRSA.
func (s *RSASigner) Scheme() Scheme { return SchemeRSA }

// Sign signs SHA-256(payload) with the principal's private key.
func (s *RSASigner) Sign(principal string, payload []byte) ([]byte, error) {
	key := s.dir.privateKey(principal)
	if key == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPrincipal, principal)
	}
	digest := sha256.Sum256(payload)
	return rsa.SignPKCS1v15(nil, key, crypto.SHA256, digest[:])
}

// Verify checks the signature against the principal's public key.
func (s *RSASigner) Verify(principal string, payload, tag []byte) error {
	pub := s.dir.publicKey(principal)
	if pub == nil {
		return fmt.Errorf("%w: %q", ErrUnknownPrincipal, principal)
	}
	digest := sha256.Sum256(payload)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], tag); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	return nil
}

// --- Directory ---

// Principal describes a security principal: its name and its security
// level for multi-level says and trust evaluation (§4.5). Higher levels are
// more trusted.
type Principal struct {
	Name  string
	Level int64
}

// Directory holds the deployment's principals: names, security levels, and
// RSA key pairs. It is safe for concurrent use.
type Directory struct {
	mu     sync.RWMutex
	levels map[string]int64
	keys   map[string]*rsa.PrivateKey
	bits   int
	rng    io.Reader
}

// NewDirectory creates an empty directory generating DefaultRSABits keys
// from crypto/rand.
func NewDirectory() *Directory {
	return &Directory{
		levels: make(map[string]int64),
		keys:   make(map[string]*rsa.PrivateKey),
		bits:   DefaultRSABits,
		rng:    rand.Reader,
	}
}

// NewDeterministicDirectory creates a directory whose key generation draws
// from a seeded deterministic stream. The keys are NOT secure; determinism
// makes experiment runs reproducible and avoids re-generating key material
// between runs, exactly like reusing a test keystore.
func NewDeterministicDirectory(seed int64) *Directory {
	d := NewDirectory()
	d.rng = newDetReader(seed)
	return d
}

// SetKeyBits overrides the RSA modulus size for subsequently added
// principals (for ablation experiments).
func (d *Directory) SetKeyBits(bits int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.bits = bits
}

// AddPrincipal registers a principal with a security level, generating its
// key pair. Re-adding an existing principal only updates its level.
func (d *Directory) AddPrincipal(name string, level int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.levels[name] = level
	if _, ok := d.keys[name]; ok {
		return nil
	}
	var key *rsa.PrivateKey
	var err error
	if _, det := d.rng.(*detReader); det {
		// rsa.GenerateKey deliberately de-randomizes its reader
		// (randutil.MaybeReadByte), so reproducible keys must be derived
		// from primes directly.
		key, err = generateKeyFromPrimes(d.rng, d.bits)
	} else {
		key, err = rsa.GenerateKey(d.rng, d.bits)
	}
	if err != nil {
		return fmt.Errorf("auth: generating key for %q: %w", name, err)
	}
	d.keys[name] = key
	return nil
}

// generateKeyFromPrimes builds an RSA key pair from primes drawn
// deterministically from rng, bypassing rsa.GenerateKey's intentional
// nondeterminism (randutil.MaybeReadByte, which crypto/rand.Prime also
// applies). Used only for reproducible experiment keystores.
func generateKeyFromPrimes(rng io.Reader, bits int) (*rsa.PrivateKey, error) {
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for {
		p, err := detPrime(rng, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := detPrime(rng, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue
		}
		key := &rsa.PrivateKey{
			PublicKey: rsa.PublicKey{N: n, E: int(e.Int64())},
			D:         d,
			Primes:    []*big.Int{p, q},
		}
		key.Precompute()
		if key.Validate() != nil {
			continue
		}
		return key, nil
	}
}

// detPrime draws candidate integers from rng until one passes 20
// Miller–Rabin rounds. Unlike crypto/rand.Prime it consumes a strictly
// deterministic number of bytes per candidate, so the same rng stream
// always yields the same prime.
func detPrime(rng io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("auth: prime size too small")
	}
	bytes := make([]byte, (bits+7)/8)
	b := uint(bits % 8)
	if b == 0 {
		b = 8
	}
	p := new(big.Int)
	for {
		if _, err := io.ReadFull(rng, bytes); err != nil {
			return nil, err
		}
		bytes[0] &= uint8(int(1<<b) - 1)
		bytes[0] |= 3 << (b - 2) // top two bits so p*q has full length
		bytes[len(bytes)-1] |= 1 // odd
		p.SetBytes(bytes)
		if p.ProbablyPrime(20) {
			return new(big.Int).Set(p), nil
		}
	}
}

// HasPrincipal reports whether name is registered.
func (d *Directory) HasPrincipal(name string) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	_, ok := d.levels[name]
	return ok
}

// Level returns the security level of a principal (0 if unknown).
func (d *Directory) Level(name string) int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.levels[name]
}

// SetLevel updates a principal's security level.
func (d *Directory) SetLevel(name string, level int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.levels[name] = level
}

// Principals returns all registered principals sorted by name.
func (d *Directory) Principals() []Principal {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Principal, 0, len(d.levels))
	for n, l := range d.levels {
		out = append(out, Principal{Name: n, Level: l})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (d *Directory) privateKey(name string) *rsa.PrivateKey {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.keys[name]
}

func (d *Directory) publicKey(name string) *rsa.PublicKey {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if k, ok := d.keys[name]; ok {
		return &k.PublicKey
	}
	return nil
}

// --- deterministic randomness for reproducible experiments ---

// detReader is a SHA-256-based deterministic byte stream. It is not a CSPRNG
// for production use; it exists so experiment key generation is reproducible.
type detReader struct {
	mu      sync.Mutex
	state   [32]byte
	buf     []byte
	counter uint64
}

func newDetReader(seed int64) *detReader {
	r := &detReader{}
	r.state = sha256.Sum256([]byte(fmt.Sprintf("provnet-det-seed-%d", seed)))
	return r
}

func (r *detReader) Read(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.buf) < len(p) {
		var block [40]byte
		copy(block[:32], r.state[:])
		for i := 0; i < 8; i++ {
			block[32+i] = byte(r.counter >> (8 * i))
		}
		r.counter++
		sum := sha256.Sum256(block[:])
		r.buf = append(r.buf, sum[:]...)
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}
