package auth

import (
	"os"
	"testing"
)

// TestMain lifts crypto/rsa's 1024-bit minimum for this package's tests,
// which use 512-bit keys to keep deterministic key generation fast. The
// godebug machinery honours runtime Setenv, so this covers every
// signing/verification call in the binary.
func TestMain(m *testing.M) {
	os.Setenv("GODEBUG", "rsa1024min=0")
	os.Exit(m.Run())
}
