package auth

import (
	"bytes"
	"errors"
	"testing"
)

func TestSchemeString(t *testing.T) {
	if SchemeNone.String() != "none" || SchemeHMAC.String() != "hmac" || SchemeRSA.String() != "rsa" {
		t.Error("scheme names")
	}
	if Scheme(9).String() == "" {
		t.Error("unknown scheme should still render")
	}
}

func TestNoneSigner(t *testing.T) {
	var s NoneSigner
	tag, err := s.Sign("alice", []byte("payload"))
	if err != nil || len(tag) != 0 {
		t.Fatalf("Sign = %v, %v", tag, err)
	}
	if err := s.Verify("anyone", []byte("anything"), nil); err != nil {
		t.Fatal("None verify must accept")
	}
	if s.Scheme() != SchemeNone {
		t.Error("scheme")
	}
}

func TestHMACSigner(t *testing.T) {
	s := NewHMACSigner([]byte("master-secret"))
	payload := []byte("reachable(a,c)")
	tag, err := s.Sign("alice", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify("alice", payload, tag); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Wrong principal, tampered payload, tampered tag all fail.
	if err := s.Verify("bob", payload, tag); err == nil {
		t.Error("wrong principal must fail")
	}
	if err := s.Verify("alice", []byte("reachable(a,b)"), tag); err == nil {
		t.Error("tampered payload must fail")
	}
	bad := append([]byte{}, tag...)
	bad[0] ^= 1
	if err := s.Verify("alice", payload, bad); err == nil {
		t.Error("tampered tag must fail")
	}
	// Distinct principals get distinct keys.
	tag2, _ := s.Sign("bob", payload)
	if bytes.Equal(tag, tag2) {
		t.Error("per-principal keys must differ")
	}
	// Master secret is copied, not aliased.
	master := []byte("secret2")
	s2 := NewHMACSigner(master)
	t1, _ := s2.Sign("p", payload)
	master[0] = 'X'
	t2, _ := s2.Sign("p", payload)
	if !bytes.Equal(t1, t2) {
		t.Error("mutating caller's master must not affect signer")
	}
}

func testDirectory(t *testing.T) *Directory {
	t.Helper()
	d := NewDeterministicDirectory(42)
	d.SetKeyBits(512) // small keys keep unit tests fast
	for _, p := range []string{"alice", "bob"} {
		if err := d.AddPrincipal(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestRSASignVerify(t *testing.T) {
	d := testDirectory(t)
	s := NewRSASigner(d)
	payload := []byte("path(a,c,[a,b,c],2)")
	tag, err := s.Sign("alice", payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(tag) != 64 { // 512-bit modulus
		t.Errorf("tag length = %d", len(tag))
	}
	if err := s.Verify("alice", payload, tag); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if err := s.Verify("bob", payload, tag); !errors.Is(err, ErrBadSignature) {
		t.Errorf("wrong principal: %v", err)
	}
	if err := s.Verify("alice", []byte("tampered"), tag); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload: %v", err)
	}
	if _, err := s.Sign("mallory", payload); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown signer: %v", err)
	}
	if err := s.Verify("mallory", payload, tag); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown verifier: %v", err)
	}
}

func TestDirectoryLevels(t *testing.T) {
	d := testDirectory(t)
	d.SetLevel("alice", 2)
	if d.Level("alice") != 2 {
		t.Error("SetLevel")
	}
	if d.Level("nobody") != 0 {
		t.Error("unknown level should be 0")
	}
	if !d.HasPrincipal("bob") || d.HasPrincipal("nobody") {
		t.Error("HasPrincipal")
	}
	ps := d.Principals()
	if len(ps) != 2 || ps[0].Name != "alice" || ps[1].Name != "bob" {
		t.Errorf("Principals = %v", ps)
	}
	// Re-adding keeps the key but updates the level.
	k1 := d.privateKey("alice")
	if err := d.AddPrincipal("alice", 9); err != nil {
		t.Fatal(err)
	}
	if d.privateKey("alice") != k1 {
		t.Error("re-add must not regenerate the key")
	}
	if d.Level("alice") != 9 {
		t.Error("re-add must update the level")
	}
}

func TestDeterministicDirectoryReproducible(t *testing.T) {
	d1 := NewDeterministicDirectory(7)
	d1.SetKeyBits(512)
	d2 := NewDeterministicDirectory(7)
	d2.SetKeyBits(512)
	if err := d1.AddPrincipal("n1", 1); err != nil {
		t.Fatal(err)
	}
	if err := d2.AddPrincipal("n1", 1); err != nil {
		t.Fatal(err)
	}
	if d1.privateKey("n1").D.Cmp(d2.privateKey("n1").D) != 0 {
		t.Error("same seed must yield same key")
	}
	d3 := NewDeterministicDirectory(8)
	d3.SetKeyBits(512)
	if err := d3.AddPrincipal("n1", 1); err != nil {
		t.Fatal(err)
	}
	if d1.privateKey("n1").D.Cmp(d3.privateKey("n1").D) == 0 {
		t.Error("different seeds must yield different keys")
	}
}

func TestDetReaderStream(t *testing.T) {
	r := newDetReader(1)
	a := make([]byte, 100)
	if n, err := r.Read(a); n != 100 || err != nil {
		t.Fatalf("read: %d, %v", n, err)
	}
	r2 := newDetReader(1)
	b1 := make([]byte, 40)
	b2 := make([]byte, 60)
	r2.Read(b1)
	r2.Read(b2)
	if !bytes.Equal(a, append(append([]byte{}, b1...), b2...)) {
		t.Error("stream must be independent of read chunking")
	}
}

func TestCrossSchemeTags(t *testing.T) {
	d := testDirectory(t)
	rsaS := NewRSASigner(d)
	hm := NewHMACSigner([]byte("m"))
	payload := []byte("x")
	hTag, _ := hm.Sign("alice", payload)
	if err := rsaS.Verify("alice", payload, hTag); err == nil {
		t.Error("an HMAC tag must not verify as RSA")
	}
}

func BenchmarkRSASign1024(b *testing.B) {
	d := NewDeterministicDirectory(1)
	d.SetKeyBits(1024)
	if err := d.AddPrincipal("p", 1); err != nil {
		b.Fatal(err)
	}
	s := NewRSASigner(d)
	payload := []byte("path(a,c,[a,b,c],2)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign("p", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAVerify1024(b *testing.B) {
	d := NewDeterministicDirectory(1)
	d.SetKeyBits(1024)
	if err := d.AddPrincipal("p", 1); err != nil {
		b.Fatal(err)
	}
	s := NewRSASigner(d)
	payload := []byte("path(a,c,[a,b,c],2)")
	tag, _ := s.Sign("p", payload)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Verify("p", payload, tag); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHMACSign(b *testing.B) {
	s := NewHMACSigner([]byte("master"))
	payload := []byte("path(a,c,[a,b,c],2)")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign("p", payload)
	}
}
