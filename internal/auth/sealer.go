// Link-level transport security: the Sealer interface and its session
// implementation.
//
// The Signer interface implements the says operator per principal; Sealer
// lifts it to the transport: an envelope travelling a directed (src,dst)
// link is sealed on export and opened on import. The none/HMAC/RSA says
// schemes become Sealers through SignerSealer, which ignores the link and
// charges the per-envelope cost of the underlying scheme (per-envelope RSA
// in the hostile world). SessionSealer amortizes that cost: one RSA
// handshake per link establishes a shared session key, and every
// subsequent envelope is sealed with a cheap HMAC under that key,
// re-handshaking every RekeyRounds scheduler rounds.
package auth

import (
	"crypto"
	"crypto/hmac"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"provnet/internal/data"
)

// Sealer seals and opens envelopes travelling a directed (src,dst) link.
// Implementations must be safe for concurrent use: the parallel and
// pipelined schedulers seal and open from many goroutines at once.
type Sealer interface {
	// Scheme identifies the implementation.
	Scheme() Scheme
	// Seal returns a tag authenticating payload as sent by src to dst.
	Seal(src, dst string, payload []byte) ([]byte, error)
	// Open checks that tag authenticates payload on the src→dst link.
	Open(src, dst string, payload, tag []byte) error
}

// SignerSealer adapts a per-principal Signer to the link-level Sealer
// interface: the destination is ignored and every envelope pays the
// underlying scheme's cost (none, HMAC, or RSA). This is how the three
// pre-session says schemes plug into the transport stack.
type SignerSealer struct {
	S Signer
}

// Scheme returns the wrapped signer's scheme.
func (w SignerSealer) Scheme() Scheme { return w.S.Scheme() }

// Seal signs payload as src, ignoring the link destination.
func (w SignerSealer) Seal(src, _ string, payload []byte) ([]byte, error) {
	return w.S.Sign(src, payload)
}

// Open verifies payload against src's identity, ignoring the destination.
func (w SignerSealer) Open(src, _ string, payload, tag []byte) error {
	return w.S.Verify(src, payload, tag)
}

// Session errors.
var (
	// ErrNoSession reports a seal or open on a link without an
	// established session (no handshake seen, or a stale epoch).
	ErrNoSession = errors.New("auth: no session established for link")
	// ErrBadHandshake reports a malformed or unverifiable handshake
	// frame.
	ErrBadHandshake = errors.New("auth: bad handshake")
)

// sessionKeySize is the HMAC-SHA256 session key length in bytes.
const sessionKeySize = 32

// SessionSealer implements the amortized hostile-world says: an RSA
// handshake once per directed (src,dst) link transports a session key
// (signed by the source, encrypted to the destination), after which every
// envelope on the link is sealed with HMAC-SHA256 under that key. The
// scheduler calls BeginRound once per round; with RekeyRounds > 0 the
// epoch advances every RekeyRounds rounds and the next export on each
// link re-handshakes under a fresh key.
//
// Sender and receiver state are kept strictly apart (outbound vs inbound
// sessions), exactly as two processes would: a receiver can open a
// session envelope only after accepting the corresponding handshake
// frame, even inside this in-process simulator.
type SessionSealer struct {
	dir         *Directory
	rekeyRounds int

	mu    sync.Mutex
	round int64
	epoch uint64
	out   map[string]*outSession
	in    map[string]*inSession

	handshakes atomic.Int64 // handshake frames sealed (RSA sign + encrypt)
	accepted   atomic.Int64 // handshake frames accepted (RSA verify + decrypt)
	sealed     atomic.Int64 // session-MAC seal operations
	opened     atomic.Int64 // session-MAC open operations
}

// outSession is the sender half of a link session.
type outSession struct {
	epoch uint64
	key   []byte
}

// inSession is the receiver half: the current key plus the previous
// epoch's, so envelopes in flight across a rekey boundary still open.
type inSession struct {
	epoch     uint64
	key       []byte
	prevEpoch uint64
	prevKey   []byte
}

// NewSessionSealer creates a session sealer over the directory's RSA key
// material. rekeyRounds > 0 rotates session keys every that many rounds;
// 0 keeps one key per link for the lifetime of the run.
func NewSessionSealer(dir *Directory, rekeyRounds int) *SessionSealer {
	return &SessionSealer{
		dir:         dir,
		rekeyRounds: rekeyRounds,
		out:         make(map[string]*outSession),
		in:          make(map[string]*inSession),
	}
}

// Scheme returns SchemeSession.
func (s *SessionSealer) Scheme() Scheme { return SchemeSession }

// BeginRound advances the scheduler round, rotating the epoch every
// RekeyRounds rounds.
func (s *SessionSealer) BeginRound() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.round++
	if s.rekeyRounds > 0 {
		s.epoch = uint64((s.round - 1) / int64(s.rekeyRounds))
	}
}

// Epoch returns the current key epoch.
func (s *SessionSealer) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func linkKey(src, dst string) string { return src + "\x00" + dst }

// deriveSessionKey derives the src→dst session key for an epoch from the
// source's private key material. Derivation (rather than drawing from a
// shared random stream) keeps key bytes independent of scheduler
// interleaving, so parallel and sequential runs ship identical traffic.
func deriveSessionKey(secret []byte, src, dst string, epoch uint64) []byte {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte("link:"))
	mac.Write([]byte(src))
	mac.Write([]byte{0})
	mac.Write([]byte(dst))
	var e [8]byte
	binary.BigEndian.PutUint64(e[:], epoch)
	mac.Write(e[:])
	return mac.Sum(nil)
}

// EnsureSession installs (or refreshes, after a rekey) the outbound
// session for the src→dst link at the current epoch. It reports whether a
// handshake frame must be shipped before the next data envelope, and the
// epoch that frame must carry. Key derivation here is cheap symmetric
// work; the RSA cost lives in SealHandshake so the pipelined scheduler
// can run it off the evaluation path.
func (s *SessionSealer) EnsureSession(src, dst string) (needHandshake bool, epoch uint64, err error) {
	secret := s.dir.sessionSecret(src)
	if secret == nil {
		return false, 0, fmt.Errorf("%w: %q", ErrUnknownPrincipal, src)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := linkKey(src, dst)
	if sess, ok := s.out[k]; ok && sess.epoch == s.epoch {
		return false, s.epoch, nil
	}
	s.out[k] = &outSession{epoch: s.epoch, key: deriveSessionKey(secret, src, dst, s.epoch)}
	return true, s.epoch, nil
}

// ResetOutbound forgets every outbound session, forcing a fresh
// handshake on each link's next export. The network calls it before a
// soft-state resupply: a restarted peer lost its inbound session keys
// with its tables, so data sealed under the old sessions would be
// dropped as unopenable.
func (s *SessionSealer) ResetOutbound() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.out = make(map[string]*outSession)
}

// SealHandshake builds the handshake frame for the src→dst link at the
// given epoch: the session key encrypted to dst's public key, signed by
// src. This is the per-link RSA cost the session scheme amortizes.
func (s *SessionSealer) SealHandshake(src, dst string, epoch uint64) ([]byte, error) {
	s.mu.Lock()
	sess, ok := s.out[linkKey(src, dst)]
	s.mu.Unlock()
	if !ok || sess.epoch != epoch {
		return nil, fmt.Errorf("%w: %s->%s epoch %d", ErrNoSession, src, dst, epoch)
	}
	pub := s.dir.publicKey(dst)
	if pub == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPrincipal, dst)
	}
	wrapped, err := rsa.EncryptPKCS1v15(rand.Reader, pub, sess.key)
	if err != nil {
		return nil, fmt.Errorf("auth: wrapping session key %s->%s: %w", src, dst, err)
	}
	b := data.AppendString(nil, src)
	b = data.AppendString(b, dst)
	b = binary.AppendUvarint(b, epoch)
	b = data.AppendBytes(b, wrapped)
	key := s.dir.privateKey(src)
	if key == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownPrincipal, src)
	}
	digest := sha256.Sum256(b)
	sig, err := rsa.SignPKCS1v15(nil, key, crypto.SHA256, digest[:])
	if err != nil {
		return nil, fmt.Errorf("auth: signing handshake %s->%s: %w", src, dst, err)
	}
	s.handshakes.Add(1)
	return data.AppendBytes(b, sig), nil
}

// AcceptHandshake verifies a handshake frame addressed to self and
// installs the inbound session it transports, keeping the previous
// epoch's key so in-flight envelopes across a rekey boundary still open.
// Frames carrying an epoch older than the installed one are rejected —
// replaying a recorded pre-rekey handshake must not roll the link back
// to a retired key. It returns the source principal of the accepted
// handshake.
func (s *SessionSealer) AcceptHandshake(self string, frame []byte) (string, error) {
	src, n1, err := data.DecodeString(frame)
	if err != nil {
		return "", fmt.Errorf("%w: src: %v", ErrBadHandshake, err)
	}
	dst, n2, err := data.DecodeString(frame[n1:])
	if err != nil {
		return "", fmt.Errorf("%w: dst: %v", ErrBadHandshake, err)
	}
	n := n1 + n2
	epoch, m := binary.Uvarint(frame[n:])
	if m <= 0 {
		return "", fmt.Errorf("%w: epoch", ErrBadHandshake)
	}
	n += m
	wrapped, m, err := data.DecodeBytes(frame[n:])
	if err != nil {
		return "", fmt.Errorf("%w: wrapped key: %v", ErrBadHandshake, err)
	}
	n += m
	signed := frame[:n]
	sig, m, err := data.DecodeBytes(frame[n:])
	if err != nil {
		return "", fmt.Errorf("%w: sig: %v", ErrBadHandshake, err)
	}
	if n+m != len(frame) {
		return "", fmt.Errorf("%w: %d trailing bytes", ErrBadHandshake, len(frame)-n-m)
	}
	if dst != self {
		return "", fmt.Errorf("%w: addressed to %q, not %q", ErrBadHandshake, dst, self)
	}
	pub := s.dir.publicKey(src)
	if pub == nil {
		return "", fmt.Errorf("%w: %q", ErrUnknownPrincipal, src)
	}
	digest := sha256.Sum256(signed)
	if err := rsa.VerifyPKCS1v15(pub, crypto.SHA256, digest[:], sig); err != nil {
		return "", fmt.Errorf("%w: signature: %v", ErrBadHandshake, err)
	}
	key := s.dir.privateKey(self)
	if key == nil {
		return "", fmt.Errorf("%w: %q", ErrUnknownPrincipal, self)
	}
	sessionKey, err := rsa.DecryptPKCS1v15(nil, key, wrapped)
	if err != nil {
		return "", fmt.Errorf("%w: unwrapping key: %v", ErrBadHandshake, err)
	}
	if len(sessionKey) != sessionKeySize {
		return "", fmt.Errorf("%w: session key size %d", ErrBadHandshake, len(sessionKey))
	}
	s.mu.Lock()
	k := linkKey(src, dst)
	cur, ok := s.in[k]
	switch {
	case ok && epoch < cur.epoch:
		s.mu.Unlock()
		return "", fmt.Errorf("%w: stale epoch %d < %d (replay?)", ErrBadHandshake, epoch, cur.epoch)
	case ok && epoch == cur.epoch:
		s.in[k] = &inSession{epoch: epoch, key: sessionKey, prevEpoch: cur.prevEpoch, prevKey: cur.prevKey}
	case ok:
		s.in[k] = &inSession{epoch: epoch, key: sessionKey, prevEpoch: cur.epoch, prevKey: cur.key}
	default:
		s.in[k] = &inSession{epoch: epoch, key: sessionKey}
	}
	s.mu.Unlock()
	s.accepted.Add(1)
	return src, nil
}

// Seal MACs payload under the link's outbound session key. The tag
// carries the key epoch so the receiver selects the right key across
// rekey boundaries.
func (s *SessionSealer) Seal(src, dst string, payload []byte) ([]byte, error) {
	s.mu.Lock()
	sess, ok := s.out[linkKey(src, dst)]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s->%s", ErrNoSession, src, dst)
	}
	mac := hmac.New(sha256.New, sess.key)
	mac.Write(payload)
	s.sealed.Add(1)
	return mac.Sum(binary.AppendUvarint(nil, sess.epoch)), nil
}

// Open checks a session-MAC tag against the link's inbound session,
// accepting the current epoch and the one preceding it.
func (s *SessionSealer) Open(src, dst string, payload, tag []byte) error {
	epoch, m := binary.Uvarint(tag)
	if m <= 0 {
		return fmt.Errorf("%w: epoch", ErrBadSignature)
	}
	s.mu.Lock()
	sess, ok := s.in[linkKey(src, dst)]
	var key []byte
	if ok {
		switch epoch {
		case sess.epoch:
			key = sess.key
		case sess.prevEpoch:
			key = sess.prevKey
		}
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s->%s", ErrNoSession, src, dst)
	}
	if key == nil {
		return fmt.Errorf("%w: %s->%s epoch %d", ErrNoSession, src, dst, epoch)
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(payload)
	s.opened.Add(1)
	if !hmac.Equal(mac.Sum(nil), tag[m:]) {
		return ErrBadSignature
	}
	return nil
}

// SessionStats reports the sealer's operation counts: handshake frames
// sealed and accepted (the RSA operations) and session-MAC seals/opens
// (the amortized symmetric operations).
func (s *SessionSealer) SessionStats() (handshakes, accepted, sealed, opened int64) {
	return s.handshakes.Load(), s.accepted.Load(), s.sealed.Load(), s.opened.Load()
}

// sessionSecret derives a per-principal secret for session-key derivation
// from the principal's private key material (nil if unknown). Determinism
// follows the directory's: deterministic directories yield reproducible
// session keys.
func (d *Directory) sessionSecret(name string) []byte {
	d.mu.RLock()
	defer d.mu.RUnlock()
	k, ok := d.keys[name]
	if !ok {
		return nil
	}
	h := sha256.New()
	h.Write([]byte("provnet-session-secret:"))
	h.Write(k.D.Bytes())
	return h.Sum(nil)
}
