package auth

import (
	"errors"
	"testing"
)

func sealerDir(t *testing.T) *Directory {
	t.Helper()
	d := NewDeterministicDirectory(21)
	d.SetKeyBits(512)
	for _, p := range []string{"a", "b", "c"} {
		if err := d.AddPrincipal(p, 1); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// handshake performs the full a→b handshake and returns the sealer.
func handshake(t *testing.T, s *SessionSealer, src, dst string) {
	t.Helper()
	need, epoch, err := s.EnsureSession(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !need {
		return
	}
	frame, err := s.SealHandshake(src, dst, epoch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.AcceptHandshake(dst, frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != src {
		t.Fatalf("accepted handshake from %q, want %q", got, src)
	}
}

func TestSignerSealerAdaptsSigner(t *testing.T) {
	d := sealerDir(t)
	s := SignerSealer{S: NewRSASigner(d)}
	if s.Scheme() != SchemeRSA {
		t.Fatalf("scheme = %v", s.Scheme())
	}
	tag, err := s.Seal("a", "b", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open("a", "anything", []byte("payload"), tag); err != nil {
		t.Errorf("open: %v", err)
	}
	if err := s.Open("b", "x", []byte("payload"), tag); err == nil {
		t.Error("wrong principal must fail")
	}
}

func TestSessionSealRoundTrip(t *testing.T) {
	s := NewSessionSealer(sealerDir(t), 0)
	handshake(t, s, "a", "b")
	payload := []byte("the tuple bytes")
	tag, err := s.Seal("a", "b", payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open("a", "b", payload, tag); err != nil {
		t.Fatalf("open: %v", err)
	}
	// Second EnsureSession on the same link needs no new handshake.
	need, _, err := s.EnsureSession("a", "b")
	if err != nil || need {
		t.Fatalf("EnsureSession again: need=%v err=%v", need, err)
	}
	hs, acc, sealed, opened := s.SessionStats()
	if hs != 1 || acc != 1 || sealed != 1 || opened != 1 {
		t.Errorf("stats = %d/%d/%d/%d", hs, acc, sealed, opened)
	}
}

func TestSessionOpenWithoutHandshakeFails(t *testing.T) {
	s := NewSessionSealer(sealerDir(t), 0)
	// Sender installs its half, but the handshake frame never reaches b.
	if _, _, err := s.EnsureSession("a", "b"); err != nil {
		t.Fatal(err)
	}
	tag, err := s.Seal("a", "b", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open("a", "b", []byte("x"), tag); !errors.Is(err, ErrNoSession) {
		t.Errorf("open without handshake = %v, want ErrNoSession", err)
	}
}

func TestSessionTamperDetection(t *testing.T) {
	s := NewSessionSealer(sealerDir(t), 0)
	handshake(t, s, "a", "b")
	tag, err := s.Seal("a", "b", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open("a", "b", []byte("tampered"), tag); !errors.Is(err, ErrBadSignature) {
		t.Errorf("tampered payload = %v, want ErrBadSignature", err)
	}
	// A tag from the a→b link must not open on another link.
	handshake(t, s, "c", "b")
	if err := s.Open("c", "b", []byte("payload"), tag); !errors.Is(err, ErrBadSignature) {
		t.Errorf("cross-link tag = %v, want ErrBadSignature", err)
	}
}

func TestSessionHandshakeCorruption(t *testing.T) {
	s := NewSessionSealer(sealerDir(t), 0)
	_, epoch, err := s.EnsureSession("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	frame, err := s.SealHandshake("a", "b", epoch)
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation must error cleanly, never panic.
	for cut := 0; cut < len(frame); cut++ {
		if _, err := s.AcceptHandshake("b", frame[:cut]); err == nil {
			t.Fatalf("truncated handshake %d/%d must fail", cut, len(frame))
		}
	}
	// Flipping any byte must fail (signature covers everything).
	for i := 0; i < len(frame); i++ {
		mut := append([]byte{}, frame...)
		mut[i] ^= 0x40
		if _, err := s.AcceptHandshake("b", mut); err == nil {
			t.Fatalf("corrupted handshake byte %d must fail", i)
		}
	}
	// Wrong addressee must reject.
	if _, err := s.AcceptHandshake("c", frame); !errors.Is(err, ErrBadHandshake) {
		t.Errorf("misaddressed handshake = %v, want ErrBadHandshake", err)
	}
	// The intact frame still accepts after all that.
	if _, err := s.AcceptHandshake("b", frame); err != nil {
		t.Errorf("intact handshake: %v", err)
	}
}

func TestSessionRekey(t *testing.T) {
	s := NewSessionSealer(sealerDir(t), 2) // rekey every 2 rounds
	s.BeginRound()                         // round 1, epoch 0
	handshake(t, s, "a", "b")
	// Record the epoch-0 handshake for the replay check below.
	replay, err := s.SealHandshake("a", "b", 0)
	if err != nil {
		t.Fatal(err)
	}
	oldTag, err := s.Seal("a", "b", []byte("old"))
	if err != nil {
		t.Fatal(err)
	}

	s.BeginRound() // round 2, epoch 0: same key
	if need, _, err := s.EnsureSession("a", "b"); err != nil || need {
		t.Fatalf("mid-epoch EnsureSession: need=%v err=%v", need, err)
	}

	s.BeginRound() // round 3, epoch 1: rekey
	if s.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", s.Epoch())
	}
	handshake(t, s, "a", "b") // must need a fresh handshake
	newTag, err := s.Seal("a", "b", []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open("a", "b", []byte("new"), newTag); err != nil {
		t.Fatalf("open at new epoch: %v", err)
	}
	// The previous epoch's envelope still opens across the boundary.
	if err := s.Open("a", "b", []byte("old"), oldTag); err != nil {
		t.Fatalf("open at previous epoch: %v", err)
	}
	// Replaying the recorded epoch-0 handshake must not roll the link
	// back to the retired key.
	if _, err := s.AcceptHandshake("b", replay); !errors.Is(err, ErrBadHandshake) {
		t.Errorf("epoch-0 handshake replay after rekey = %v, want ErrBadHandshake", err)
	}
	if err := s.Open("a", "b", []byte("new"), newTag); err != nil {
		t.Fatalf("current epoch must survive the replay attempt: %v", err)
	}
	hs, _, _, _ := s.SessionStats()
	if hs != 3 {
		t.Errorf("handshakes sealed = %d, want 3 (initial + replay capture + rekey)", hs)
	}
}

func TestSessionUnknownPrincipals(t *testing.T) {
	s := NewSessionSealer(sealerDir(t), 0)
	if _, _, err := s.EnsureSession("nobody", "b"); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown src = %v", err)
	}
	if _, err := s.Seal("a", "b", []byte("x")); !errors.Is(err, ErrNoSession) {
		t.Errorf("seal before EnsureSession = %v", err)
	}
	if _, _, err := s.EnsureSession("a", "ghost"); err != nil {
		t.Fatal(err) // dst key lookup happens at SealHandshake time
	}
	if _, err := s.SealHandshake("a", "ghost", 0); !errors.Is(err, ErrUnknownPrincipal) {
		t.Errorf("unknown dst = %v", err)
	}
}
