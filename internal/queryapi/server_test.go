package queryapi

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"provnet/internal/core"
	"provnet/internal/data"
	"provnet/internal/obs"
	"provnet/internal/provenance"
	"provnet/internal/topo"
)

// testServer assembles a converged BestPath network over a 4-node line
// and serves its query API from an httptest server.
func testServer(t *testing.T, mode provenance.Mode) (*core.Network, *httptest.Server) {
	t.Helper()
	cfg := core.Config{Source: core.BestPath, Graph: topo.Line(4), Prov: mode}
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(n).Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { n.Close() })
	return n, srv
}

func get(t *testing.T, url string, wantStatus int) *QueryResult {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var res QueryResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	if res.V != SchemaVersion {
		t.Fatalf("GET %s: schema v%d, want v%d", url, res.V, SchemaVersion)
	}
	return &res
}

func TestTablesEndpoint(t *testing.T) {
	n, srv := testServer(t, provenance.ModeDistributed)
	res := get(t, srv.URL+"/v1/tables/bestPath?node=n0", http.StatusOK)
	if res.Kind != "tables" || len(res.Tables) != 1 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Snapshot == 0 {
		t.Error("converged network should serve a non-zero snapshot")
	}
	want := n.Tuples("n0", "bestPath")
	got := res.Tables[0].Rows
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i, row := range got {
		if row.Tuple != want[i].String() {
			t.Errorf("row %d = %q, want %q", i, row.Tuple, want[i])
		}
	}

	// All nodes when ?node= is omitted.
	all := get(t, srv.URL+"/v1/tables/bestPath", http.StatusOK)
	if len(all.Tables) != 4 {
		t.Errorf("all-node query returned %d tables, want 4", len(all.Tables))
	}
	// Unknown node is a schema-shaped 404.
	bad := get(t, srv.URL+"/v1/tables/bestPath?node=nope", http.StatusNotFound)
	if bad.Error == "" {
		t.Error("404 without error field")
	}
}

func TestBestPathEndpoint(t *testing.T) {
	_, srv := testServer(t, provenance.ModeDistributed)
	res := get(t, srv.URL+"/v1/bestpath?from=n0&dest=n3", http.StatusOK)
	if res.Kind != "bestpath" || len(res.Paths) != 1 {
		t.Fatalf("bad result: %+v", res)
	}
	p := res.Paths[0]
	if p.From != "n0" || p.Dest != "n3" || p.Cost != 3 {
		t.Errorf("path = %+v, want n0→n3 cost 3", p)
	}
	if want := []string{"n0", "n1", "n2", "n3"}; strings.Join(p.Path, ",") != strings.Join(want, ",") {
		t.Errorf("path hops = %v, want %v", p.Path, want)
	}
	// Unfiltered: every (src,dest) pair of the line.
	all := get(t, srv.URL+"/v1/bestpath", http.StatusOK)
	if len(all.Paths) != 12 {
		t.Errorf("full sweep returned %d paths, want 12", len(all.Paths))
	}
}

func TestTracebackEndpointDistributed(t *testing.T) {
	n, srv := testServer(t, provenance.ModeDistributed)
	target := n.Tuples("n0", "bestPath")[0]
	res := get(t, srv.URL+"/v1/traceback?node=n0&tuple="+queryEscape(target.String()), http.StatusOK)
	if res.Kind != "traceback" || res.Traceback == nil {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Traceback.Tuple != target.String() {
		t.Errorf("root = %q, want %q", res.Traceback.Tuple, target)
	}
	if res.Stats == nil || res.Stats.Entries == 0 {
		t.Errorf("missing query stats: %+v", res.Stats)
	}
	// The JSON tree must mirror the native reconstruction.
	tree, _, err := n.DerivationTree("n0", target, provenance.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	nat, _ := json.Marshal(FromTree(tree))
	api, _ := json.Marshal(res.Traceback)
	if string(nat) != string(api) {
		t.Errorf("API tree diverges from native reconstruction\napi: %s\nnative: %s", api, nat)
	}

	// Bad tuple text and missing params are 400s.
	if res := get(t, srv.URL+"/v1/traceback?node=n0&tuple=oops", http.StatusBadRequest); res.Error == "" {
		t.Error("400 without error field")
	}
	if res := get(t, srv.URL+"/v1/traceback", http.StatusBadRequest); res.Error == "" {
		t.Error("400 without error field")
	}
}

func TestTracebackEndpointCondensed(t *testing.T) {
	n, srv := testServer(t, provenance.ModeCondensed)
	target := n.Tuples("n2", "bestPath")[0]
	res := get(t, srv.URL+"/v1/traceback?node=n2&tuple="+queryEscape(target.String()), http.StatusOK)
	if res.Condensed == "" || res.Traceback != nil {
		t.Fatalf("condensed query: %+v", res)
	}
	if want := n.CondensedExpr("n2", target); res.Condensed != want {
		t.Errorf("condensed = %q, want %q", res.Condensed, want)
	}
	// A tuple the snapshot does not hold is a 404.
	miss := get(t, srv.URL+"/v1/traceback?node=n2&tuple="+queryEscape("bestPath(x, y, [x], 1)"), http.StatusNotFound)
	if miss.Error == "" {
		t.Error("404 without error field")
	}
}

func TestSubscribeSSE(t *testing.T) {
	cfg := core.Config{Source: core.BestPath, Graph: topo.Line(3), Prov: provenance.ModeDistributed}
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(n).Handler())
	defer srv.Close()

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/subscribe?node=n0&pred=marker", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	if err := d.Inject("n0", data.NewTuple("marker", data.Str("n0"), data.Str("hello"))); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var payload string
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			payload = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if payload == "" {
		t.Fatalf("no SSE data line: %v", sc.Err())
	}
	var ev struct {
		V     int    `json:"v"`
		Node  string `json:"node"`
		Tuple string `json:"tuple"`
		Added bool   `json:"added"`
	}
	if err := json.Unmarshal([]byte(payload), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.V != SchemaVersion || ev.Node != "n0" || !ev.Added || !strings.HasPrefix(ev.Tuple, "marker(") {
		t.Errorf("unexpected event: %+v", ev)
	}
}

// TestTablesUnknownPredicate pins the error contract of /v1/tables: a
// predicate no node holds is a 404 wrapped in the versioned envelope,
// not a 200 with empty tables.
func TestTablesUnknownPredicate(t *testing.T) {
	_, srv := testServer(t, provenance.ModeDistributed)
	res := get(t, srv.URL+"/v1/tables/noSuchPred", http.StatusNotFound)
	if res.Error == "" || !strings.Contains(res.Error, "noSuchPred") {
		t.Errorf("404 envelope missing the predicate name: %+v", res)
	}
	// Same with a node filter.
	res = get(t, srv.URL+"/v1/tables/noSuchPred?node=n0", http.StatusNotFound)
	if res.Error == "" {
		t.Error("404 without error field")
	}
	// Known predicates still serve.
	get(t, srv.URL+"/v1/tables/link", http.StatusOK)
}

// TestTracebackBadParams pins the 400 paths of /v1/traceback: malformed
// maxdepth and offline values are client errors with versioned envelopes.
func TestTracebackBadParams(t *testing.T) {
	n, srv := testServer(t, provenance.ModeDistributed)
	target := queryEscape(n.Tuples("n0", "bestPath")[0].String())
	base := srv.URL + "/v1/traceback?node=n0&tuple=" + target
	for _, q := range []string{"&maxdepth=banana", "&maxdepth=-1", "&offline=maybe", "&offline=2"} {
		res := get(t, base+q, http.StatusBadRequest)
		if res.Error == "" {
			t.Errorf("400 for %q without error field", q)
		}
	}
	// The accepted spellings still serve.
	for _, q := range []string{"", "&maxdepth=3", "&offline=0", "&offline=false", "&offline=1", "&offline=true"} {
		get(t, base+q, http.StatusOK)
	}
}

// TestSubscribeDisconnectReleasesSubscription pins the SSE cleanup path:
// a client that vanishes mid-stream must not leak its driver
// subscription.
func TestSubscribeDisconnectReleasesSubscription(t *testing.T) {
	cfg := core.Config{Source: core.BestPath, Graph: topo.Line(3), Prov: provenance.ModeDistributed}
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(n).Handler())
	defer srv.Close()

	reqCtx, disconnect := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(reqCtx, http.MethodGet, srv.URL+"/v1/subscribe?node=n0&pred=marker", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := d.Subscribers(); got != 1 {
		t.Fatalf("subscribers = %d after connect, want 1", got)
	}
	disconnect() // client drops mid-stream
	deadline := time.Now().Add(5 * time.Second)
	for d.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription leaked: %d subscribers after disconnect", d.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// metricsServer is testServer plus an obs registry wired through
// Config.Metrics, with the network driven live (driver started) so the
// observability surface sees churn.
func metricsServer(t *testing.T) (*core.Network, *core.Driver, *httptest.Server) {
	t.Helper()
	cfg := core.Config{
		Source:  core.BestPath,
		Graph:   topo.Line(4),
		Prov:    provenance.ModeDistributed,
		Metrics: obs.New(),
	}
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	d := n.Driver()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := d.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(ctx); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(n).Handler())
	t.Cleanup(srv.Close)
	return n, d, srv
}

// TestMetricsEndpoint pins the observability mounts: /metrics serves
// Prometheus text with the core series, /v1/debug/rounds serves the
// versioned flight-recorder dump, and the /v1 middleware counts
// requests. Both mounts 404 when metrics are disabled.
func TestMetricsEndpoint(t *testing.T) {
	_, _, srv := metricsServer(t)

	get(t, srv.URL+"/v1/bestpath", http.StatusOK) // feed the middleware

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, series := range []string{
		"provnet_scheduler_rounds_total",
		"provnet_engine_firings_total",
		"provnet_transport_messages_total",
		"provnet_http_requests_total{endpoint=\"bestpath\"}",
		"provnet_http_request_seconds_count{endpoint=\"bestpath\"}",
	} {
		if !strings.Contains(text, series) {
			t.Errorf("missing series %s in /metrics:\n%s", series, text)
		}
	}

	resp, err = http.Get(srv.URL + "/v1/debug/rounds")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/rounds: status %d", resp.StatusCode)
	}
	var dump struct {
		V      int `json:"v"`
		Rounds []struct {
			Seq  int64  `json:"seq"`
			Kind string `json:"kind"`
		} `json:"rounds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.V != 1 {
		t.Errorf("debug/rounds v = %d, want 1", dump.V)
	}
	if len(dump.Rounds) == 0 {
		t.Error("debug/rounds empty after a converged run")
	}
	for i, r := range dump.Rounds {
		if r.Kind != "round" && r.Kind != "retract" && r.Kind != "quiesce" {
			t.Errorf("round %d: bad kind %q", i, r.Kind)
		}
	}

	// Without a registry the mounts do not exist.
	_, plain := testServer(t, provenance.ModeDistributed)
	for _, path := range []string{"/metrics", "/v1/debug/rounds"} {
		resp, err := http.Get(plain.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with metrics disabled: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestMetricsScrapeUnderChurn hammers /metrics and /v1/debug/rounds
// while the live driver churns links — the race detector turns any
// unsynchronized scrape path into a failure.
func TestMetricsScrapeUnderChurn(t *testing.T) {
	_, d, srv := metricsServer(t)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/v1/debug/rounds", "/v1/bestpath"} {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(srv.URL + path)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := d.CutLink("n1", "n2"); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AwaitQuiescence(ctx); err != nil {
			t.Fatal(err)
		}
		if err := d.SetLink("n1", "n2", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := d.AwaitQuiescence(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

func queryEscape(s string) string {
	r := strings.NewReplacer(" ", "%20", "[", "%5B", "]", "%5D", ",", "%2C", "(", "%28", ")", "%29")
	return r.Replace(s)
}

// TestViewDumpStability double-checks the copy-on-write contract the API
// relies on: two loads of the view between mutations are the same object,
// and a post-churn view is a different object with a higher Seq while the
// old one still renders the old state.
func TestViewDumpStability(t *testing.T) {
	cfg := core.Config{Source: core.BestPath, Graph: topo.Line(3), Prov: provenance.ModeDistributed}
	n, err := core.NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.Run(0); err != nil {
		t.Fatal(err)
	}
	d := n.Driver()
	v1 := d.ReadView()
	if v2 := d.ReadView(); v2 != v1 {
		t.Fatal("views between mutations should be the same snapshot")
	}
	before := v1.Dump()
	if err := d.CutLink("n1", "n2"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AwaitQuiescence(context.Background()); err != nil {
		t.Fatal(err)
	}
	v3 := d.ReadView()
	if v3 == v1 || v3.Seq <= v1.Seq {
		t.Fatalf("churn should publish a new snapshot: %d → %d", v1.Seq, v3.Seq)
	}
	if v1.Dump() != before {
		t.Fatal("old snapshot mutated after churn")
	}
	if fmt.Sprint(v3.Dump()) == before {
		t.Fatal("new snapshot identical to pre-churn state after a link cut")
	}
}
