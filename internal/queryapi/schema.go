// Package queryapi is the provenance-as-a-service front-end: a versioned
// JSON schema for query results (shared by cmd/traceq's -format json and
// the HTTP API) and an HTTP server mounted on a Network's Driver serving
// traceback, best-path, table, and subscription queries.
//
// Reads are snapshot-isolated: table and best-path queries serve from the
// Driver's copy-on-write ReadView, published at quiescence points, so
// thousands of concurrent queries never take the evaluation lock and a
// query overlapping live churn sees either the pre-churn or post-churn
// snapshot — never a torn mix. See docs/API.md.
package queryapi

import (
	"provnet/internal/core"
	"provnet/internal/provenance"
)

// SchemaVersion is the "v" field of every QueryResult. Consumers must
// reject versions they do not understand; fields are only ever added
// within a version.
const SchemaVersion = 1

// QueryResult is the versioned envelope of every query response, JSON or
// HTTP. Exactly one of Tables, Paths, or Traceback/Condensed is set,
// matching Kind; Error is set instead when the query failed.
type QueryResult struct {
	// V is SchemaVersion.
	V int `json:"v"`
	// Kind is "tables", "bestpath", or "traceback".
	Kind string `json:"kind"`
	// Node and Tuple echo the query target, when it has one.
	Node  string `json:"node,omitempty"`
	Tuple string `json:"tuple,omitempty"`
	// Snapshot and Clock identify the ReadView the result was served
	// from: Snapshot is the view sequence number (0 = before the first
	// convergence), Clock the network's logical time at the snapshot.
	Snapshot uint64  `json:"snapshot"`
	Clock    float64 `json:"clock"`

	Tables    []TableResult  `json:"tables,omitempty"`
	Paths     []BestPath     `json:"paths,omitempty"`
	Traceback *TracebackNode `json:"traceback,omitempty"`
	// Condensed is the <...> provenance expression of the target tuple
	// (ModeCondensed networks, which keep no derivation trees).
	Condensed string `json:"condensed,omitempty"`
	// Stats meters a distributed traceback's cost.
	Stats *TraceStats `json:"stats,omitempty"`

	Error string `json:"error,omitempty"`
}

// TableResult is one node's rows for one predicate.
type TableResult struct {
	Node string `json:"node"`
	Pred string `json:"pred"`
	Rows []Row  `json:"rows"`
}

// Row is one stored fact, with its condensed provenance expression when
// the network runs ModeCondensed.
type Row struct {
	Tuple string `json:"tuple"`
	Prov  string `json:"prov,omitempty"`
}

// BestPath is one bestPath(@S,D,P,C) fact, decoded.
type BestPath struct {
	From string   `json:"from"`
	Dest string   `json:"dest"`
	Path []string `json:"path"`
	Cost int64    `json:"cost"`
}

// TracebackNode is the JSON form of a provenance derivation tree
// (provenance.Tree): the tuple, its alternative derivations, and the
// truncation marker for nodes cut off by depth limits or cycles.
type TracebackNode struct {
	Tuple     string           `json:"tuple"`
	Truncated bool             `json:"truncated,omitempty"`
	Derivs    []TracebackDeriv `json:"derivs,omitempty"`
}

// TracebackDeriv is one derivation step: a rule fired at a location over
// child tuples.
type TracebackDeriv struct {
	Rule     string           `json:"rule"`
	Loc      string           `json:"loc"`
	Children []*TracebackNode `json:"children,omitempty"`
}

// TraceStats mirrors provenance.QueryStats.
type TraceStats struct {
	Messages     int   `json:"messages"`
	Bytes        int64 `json:"bytes"`
	NodesVisited int   `json:"nodesVisited"`
	Entries      int   `json:"entries"`
}

// FromTree converts a derivation tree to its JSON schema form.
func FromTree(t *provenance.Tree) *TracebackNode {
	if t == nil {
		return nil
	}
	n := &TracebackNode{Tuple: t.Tuple.String(), Truncated: t.Truncated}
	for _, d := range t.Derivs {
		jd := TracebackDeriv{Rule: d.Rule, Loc: d.Loc}
		for _, c := range d.Children {
			jd.Children = append(jd.Children, FromTree(c))
		}
		n.Derivs = append(n.Derivs, jd)
	}
	return n
}

// FromStats converts traceback query stats to their schema form.
func FromStats(s *provenance.QueryStats) *TraceStats {
	if s == nil {
		return nil
	}
	return &TraceStats{Messages: s.Messages, Bytes: s.Bytes, NodesVisited: s.NodesVisited, Entries: s.Entries}
}

// TracebackResult assembles the traceback QueryResult cmd/traceq and the
// HTTP handler share.
func TracebackResult(node string, target string, tree *provenance.Tree, stats *provenance.QueryStats) *QueryResult {
	return &QueryResult{
		V:         SchemaVersion,
		Kind:      "traceback",
		Node:      node,
		Tuple:     target,
		Traceback: FromTree(tree),
		Stats:     FromStats(stats),
	}
}

// decodeBestPath parses one bestPath(@S,D,P,C) view row.
func decodeBestPath(r core.ViewRow) (BestPath, bool) {
	args := r.Tuple.Args
	if r.Tuple.Pred != "bestPath" || len(args) != 4 {
		return BestPath{}, false
	}
	bp := BestPath{From: args[0].Str, Dest: args[1].Str, Cost: args[3].Int}
	for _, v := range args[2].List {
		bp.Path = append(bp.Path, v.Str)
	}
	return bp, true
}
