package queryapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"provnet/internal/core"
	"provnet/internal/obs"
	"provnet/internal/provenance"
)

// Server answers HTTP queries against one Network. Table and best-path
// reads are served lock-free from the Driver's ReadView; traceback
// queries walk the concurrency-safe provenance stores (ModeDistributed)
// or read condensed expressions off the view (ModeCondensed); subscribe
// streams live table updates over SSE.
type Server struct {
	n *core.Network
	d *core.Driver
}

// NewServer mounts a query server on the network's driver.
func NewServer(n *core.Network) *Server { return &Server{n: n, d: n.Driver()} }

// Handler returns the HTTP handler serving the /v1 API. When the
// network carries a metrics registry (Config.Metrics), the observability
// surface mounts alongside it — GET /metrics (Prometheus text) and
// GET /v1/debug/rounds (the flight recorder) — and every /v1 endpoint
// is wrapped with request-count and latency instruments.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/tables/{pred}", s.instrument("tables", s.handleTables))
	mux.HandleFunc("GET /v1/bestpath", s.instrument("bestpath", s.handleBestPath))
	mux.HandleFunc("GET /v1/traceback", s.instrument("traceback", s.handleTraceback))
	mux.HandleFunc("GET /v1/subscribe", s.instrument("subscribe", s.handleSubscribe))
	if s.n.Metrics() != nil {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
		mux.HandleFunc("GET /v1/debug/rounds", s.handleDebugRounds)
	}
	return mux
}

// instrument wraps one endpoint with a request counter and latency
// histogram. With metrics disabled it returns h untouched — zero
// overhead, same as every other disabled instrument.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	m := s.n.Metrics()
	if m == nil {
		return h
	}
	reqs := m.LabeledCounter("provnet_http_requests_total", "API requests served, by endpoint.", "endpoint", endpoint)
	lat := m.LabeledHistogram("provnet_http_request_seconds", "API request latency, by endpoint.", "endpoint", endpoint, obs.DefLatencyNanos, 1e-9)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		lat.Observe(time.Since(start).Nanoseconds())
		reqs.Inc()
	}
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format (only mounted when a registry is configured).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.n.Metrics().WritePrometheus(w)
}

// debugRounds is the versioned JSON schema of GET /v1/debug/rounds.
type debugRounds struct {
	V      int               `json:"v"`
	Rounds []obs.RoundRecord `json:"rounds"`
}

// debugRoundsVersion is the /v1/debug/rounds schema version; bump on
// breaking changes (additive RoundRecord fields do not count).
const debugRoundsVersion = 1

// handleDebugRounds dumps the flight recorder: the last N scheduler
// steps with per-round deltas, timings, and queue depths.
func (s *Server) handleDebugRounds(w http.ResponseWriter, r *http.Request) {
	recs := s.n.Metrics().FlightRecorder().Snapshot()
	if recs == nil {
		recs = []obs.RoundRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(debugRounds{V: debugRoundsVersion, Rounds: recs})
}

// writeResult marshals the envelope (every response, success or error,
// is a QueryResult).
func writeResult(w http.ResponseWriter, status int, res *QueryResult) {
	res.V = SchemaVersion
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(res)
}

func writeError(w http.ResponseWriter, status int, kind string, err error) {
	writeResult(w, status, &QueryResult{Kind: kind, Error: err.Error()})
}

// handleTables serves GET /v1/tables/{pred}?node=N — the rows of one
// predicate at one node (or at every node when node is omitted), from
// the current snapshot.
func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	pred := r.PathValue("pred")
	node := r.URL.Query().Get("node")
	view := s.d.ReadView()
	res := &QueryResult{Kind: "tables", Node: node, Snapshot: view.Seq, Clock: view.Clock}
	nodes := view.Nodes()
	if node != "" {
		if !view.HasNode(node) {
			writeError(w, http.StatusNotFound, "tables", fmt.Errorf("unknown node %q", node))
			return
		}
		nodes = []string{node}
	}
	// A predicate unknown everywhere is a client error, not an empty
	// result: 404 distinguishes "no such relation" from "relation exists
	// but holds no rows at the queried node(s)".
	known := false
	for _, name := range nodes {
		for _, p := range view.Predicates(name) {
			if p == pred {
				known = true
				break
			}
		}
		if known {
			break
		}
	}
	if !known {
		writeError(w, http.StatusNotFound, "tables", fmt.Errorf("unknown predicate %q", pred))
		return
	}
	for _, name := range nodes {
		rows := view.Rows(name, pred)
		tr := TableResult{Node: name, Pred: pred, Rows: []Row{}}
		for _, row := range rows {
			tr.Rows = append(tr.Rows, Row{Tuple: row.Tuple.String(), Prov: row.Prov})
		}
		res.Tables = append(res.Tables, tr)
	}
	writeResult(w, http.StatusOK, res)
}

// handleBestPath serves GET /v1/bestpath?from=S&dest=D — decoded
// bestPath(@S,D,P,C) facts from the current snapshot, filtered by the
// optional from/dest parameters.
func (s *Server) handleBestPath(w http.ResponseWriter, r *http.Request) {
	from := r.URL.Query().Get("from")
	dest := r.URL.Query().Get("dest")
	view := s.d.ReadView()
	res := &QueryResult{Kind: "bestpath", Snapshot: view.Seq, Clock: view.Clock, Paths: []BestPath{}}
	nodes := view.Nodes()
	if from != "" {
		if !view.HasNode(from) {
			writeError(w, http.StatusNotFound, "bestpath", fmt.Errorf("unknown node %q", from))
			return
		}
		nodes = []string{from}
	}
	for _, name := range nodes {
		for _, row := range view.Rows(name, "bestPath") {
			bp, ok := decodeBestPath(row)
			if !ok || (dest != "" && bp.Dest != dest) {
				continue
			}
			res.Paths = append(res.Paths, bp)
		}
	}
	writeResult(w, http.StatusOK, res)
}

// handleTraceback serves GET /v1/traceback?node=N&tuple=T — the
// derivation tree of T at N (ModeLocal/ModeDistributed), or its
// condensed provenance expression read off the snapshot (ModeCondensed).
// Optional: maxdepth bounds reconstruction, offline=1 consults offline
// stores (forensics over expired state).
func (s *Server) handleTraceback(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	node := q.Get("node")
	tupleText := q.Get("tuple")
	if node == "" || tupleText == "" {
		writeError(w, http.StatusBadRequest, "traceback", fmt.Errorf("node and tuple parameters are required"))
		return
	}
	target, err := core.ParseTuple(tupleText)
	if err != nil {
		writeError(w, http.StatusBadRequest, "traceback", err)
		return
	}
	view := s.d.ReadView()
	res := &QueryResult{Kind: "traceback", Node: node, Tuple: target.String(), Snapshot: view.Seq, Clock: view.Clock}

	if s.n.ProvMode() == provenance.ModeCondensed {
		// Condensed provenance keeps no trees; the snapshot carries the
		// <...> expression of every live tuple.
		if !view.HasNode(node) {
			writeError(w, http.StatusNotFound, "traceback", fmt.Errorf("unknown node %q", node))
			return
		}
		for _, row := range view.Rows(node, target.Pred) {
			if row.Tuple.Equal(target) {
				res.Condensed = row.Prov
				writeResult(w, http.StatusOK, res)
				return
			}
		}
		writeError(w, http.StatusNotFound, "traceback", fmt.Errorf("no live tuple %s at %s in snapshot %d", target, node, view.Seq))
		return
	}

	var opts provenance.QueryOpts
	switch off := q.Get("offline"); off {
	case "", "0", "false":
	case "1", "true":
		opts.Offline = true
	default:
		writeError(w, http.StatusBadRequest, "traceback", fmt.Errorf("bad offline %q (want 0/1/true/false)", off))
		return
	}
	if md := q.Get("maxdepth"); md != "" {
		v, err := strconv.Atoi(md)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "traceback", fmt.Errorf("bad maxdepth %q", md))
			return
		}
		opts.MaxDepth = v
	}
	tree, stats, err := s.n.DerivationTree(node, target, opts)
	if err != nil {
		writeError(w, http.StatusNotFound, "traceback", err)
		return
	}
	res.Traceback = FromTree(tree)
	res.Stats = FromStats(stats)
	writeResult(w, http.StatusOK, res)
}

// subscribeEvent is one SSE data payload.
type subscribeEvent struct {
	V     int    `json:"v"`
	Node  string `json:"node"`
	Tuple string `json:"tuple"`
	Added bool   `json:"added"`
}

// handleSubscribe serves GET /v1/subscribe?node=N&pred=P — a
// Server-Sent-Events stream of table updates from the driver's Subscribe
// machinery ("" matches everything). Each event is one JSON
// subscribeEvent; the stream ends when the client disconnects or the
// driver closes.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sub, err := s.d.Subscribe(q.Get("node"), q.Get("pred"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "subscribe", err)
		return
	}
	defer sub.Close()
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "subscribe", fmt.Errorf("streaming unsupported"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case u, ok := <-sub.Updates():
			if !ok {
				return // driver closed
			}
			payload, err := json.Marshal(subscribeEvent{V: SchemaVersion, Node: u.Node, Tuple: u.Tuple.String(), Added: u.Added})
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: update\ndata: %s\n\n", payload); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
