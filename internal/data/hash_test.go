package data

import (
	"fmt"
	"sync"
	"testing"
)

// TestHashMatchesEqual pins the hash/equality contract: Equal values and
// tuples must hash identically, including the int/float numeric
// unification that Key() encodes (2 and 2.0 are Equal, so they must share
// a hash), and distinct values should in practice not collide at full
// hash width.
func TestHashMatchesEqual(t *testing.T) {
	vals := []Value{
		Int(0), Int(2), Int(-7), Int(1 << 60), Int((1 << 60) + 1),
		Float(0), Float(2), Float(2.5), Float(-7),
		Bool(true), Bool(false),
		Str(""), Str("a"), Str("ab"), Str("b"),
		List(), List(Int(1)), List(Int(1), Int(2)), List(Str("a"), List(Int(2))),
		Strings("n1", "n2", "n3"),
	}
	for i, a := range vals {
		for j, b := range vals {
			eq, heq := a.Equal(b), a.Hash() == b.Hash()
			if eq && !heq {
				t.Errorf("vals[%d]=%v Equal vals[%d]=%v but hashes differ", i, a, j, b)
			}
			if !eq && heq && i != j {
				t.Errorf("vals[%d]=%v and vals[%d]=%v collide at full width", i, a, j, b)
			}
		}
	}
	// The deliberate unification: 2 == 2.0 share a hash. For ints beyond
	// 2^53 the hash mirrors Key(), which switches to an exact integer
	// encoding — hash equality tracks key equality, the map semantics.
	if Int(2).Hash() != Float(2).Hash() {
		t.Error("Int(2) and Float(2) are Equal but hash differently")
	}
	big := int64(1<<62) + 1
	if Int(big).Key() == Float(float64(big)).Key() {
		t.Fatalf("test premise broken: %d should key differently from its float rounding", big)
	}
	if Int(big).Hash() == Float(float64(big)).Hash() {
		t.Errorf("Int(%d) hash-collides with its inexact float form", big)
	}
}

// TestTupleHashMatchesEqual covers the tuple-level contract including
// asserters and key-column projections.
func TestTupleHashMatchesEqual(t *testing.T) {
	a := NewTuple("link", Str("n1"), Str("n2"), Int(3))
	b := NewTuple("link", Str("n1"), Str("n2"), Float(3))
	if !a.Equal(b) || a.Hash() != b.Hash() {
		t.Errorf("int/float unified tuples must be Equal with equal hashes")
	}
	c := a.Says("n1")
	if a.Hash() == c.Hash() {
		t.Error("asserter must feed the tuple hash")
	}
	d := NewTuple("cost", Str("n1"), Str("n2"), Int(3))
	if a.Hash() == d.Hash() {
		t.Error("predicate must feed the tuple hash")
	}
	// HashCols mirrors ValueKey: same projection, same hash ⟺ same key.
	cols := []int{0, 1}
	e := NewTuple("link", Str("n1"), Str("n2"), Int(99))
	if a.ValueKey(cols) != e.ValueKey(cols) {
		t.Fatal("premise: projections should agree")
	}
	if a.HashCols(cols) != e.HashCols(cols) {
		t.Error("HashCols must agree when ValueKey agrees")
	}
	if a.HashCols([]int{2}) == e.HashCols([]int{2}) {
		t.Error("HashCols must differ on differing projected columns")
	}
	// HashValues is the probe-side twin of HashCols' column fold only in
	// bucket terms: pairwise-Equal slices agree.
	if HashValues([]Value{Int(3)}) != HashValues([]Value{Float(3)}) {
		t.Error("HashValues must unify int/float like Equal does")
	}
}

// TestLimitHashBitsForTesting verifies the collision-forcing hook used by
// the engine's bucket-fallback tests.
func TestLimitHashBitsForTesting(t *testing.T) {
	restore := LimitHashBitsForTesting(1)
	defer restore()
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		h := NewTuple("p", Int(int64(i))).Hash()
		if h > 1 {
			t.Fatalf("hash %d exceeds 1-bit mask", h)
		}
		seen[h] = true
	}
	if len(seen) != 2 {
		t.Fatalf("expected both buckets populated, got %v", seen)
	}
	restore()
	if NewTuple("p", Int(1)).Hash() <= 1 {
		t.Fatal("restore did not lift the mask")
	}
}

// TestInternIDStable pins id stability and canonical backing.
func TestInternIDStable(t *testing.T) {
	a := InternID("intern-test-sym-a")
	b := InternID("intern-test-sym-b")
	if a == b {
		t.Fatal("distinct symbols share an id")
	}
	if InternID("intern-test-sym-a") != a {
		t.Error("re-interning changed the id")
	}
	if InternedString(a) != "intern-test-sym-a" || InternedString(b) != "intern-test-sym-b" {
		t.Error("InternedString does not round-trip")
	}
	if InternedString(1<<30) != "" {
		t.Error("unknown id should map to empty string")
	}
	if Intern("intern-test-sym-a") != "intern-test-sym-a" {
		t.Error("Intern returns a non-equal string")
	}
}

// TestInternConcurrent hammers the table from many goroutines; run under
// -race this is the concurrency pin for the interner.
func TestInternConcurrent(t *testing.T) {
	const workers, symbols = 8, 200
	var wg sync.WaitGroup
	ids := make([][]uint32, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]uint32, symbols)
			for i := 0; i < symbols; i++ {
				s := fmt.Sprintf("conc-sym-%d", i)
				ids[w][i] = InternID(s)
				if got := InternedString(ids[w][i]); got != s {
					t.Errorf("round-trip failed: %q -> %d -> %q", s, ids[w][i], got)
				}
				Intern(s)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < symbols; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got id %d for symbol %d, worker 0 got %d", w, ids[w][i], i, ids[0][i])
			}
		}
	}
}
