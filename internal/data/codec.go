package data

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// The wire codec is a compact, deterministic binary encoding used for every
// byte that crosses a simulated link. The experiment harness reports
// bandwidth as the exact sum of encoded message sizes, so the codec is the
// ground truth for Figure 4.
//
// Layout:
//
//	value  := kind:uint8 payload
//	int    -> zigzag varint
//	bool   -> uint8
//	float  -> 8-byte little-endian IEEE 754
//	string -> uvarint length, bytes
//	list   -> uvarint count, values
//	tuple  := string(pred) string(asserter) uvarint(arity) values

var (
	// ErrShortBuffer is returned when decoding runs out of input.
	ErrShortBuffer = errors.New("data: short buffer")
	// ErrCorrupt is returned when decoding meets an invalid encoding.
	ErrCorrupt = errors.New("data: corrupt encoding")
)

// AppendValue appends the wire encoding of v to b and returns the result.
func AppendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case KindInt:
		b = binary.AppendVarint(b, v.Int)
	case KindBool:
		b = append(b, byte(v.Int&1))
	case KindFloat:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float))
	case KindString:
		b = AppendString(b, v.Str)
	case KindList:
		b = binary.AppendUvarint(b, uint64(len(v.List)))
		for _, e := range v.List {
			b = AppendValue(b, e)
		}
	}
	return b
}

// DecodeValue decodes one value from b, returning it and the number of
// bytes consumed.
func DecodeValue(b []byte) (Value, int, error) {
	if len(b) == 0 {
		return Value{}, 0, ErrShortBuffer
	}
	kind := Kind(b[0])
	n := 1
	switch kind {
	case KindInt:
		i, m := binary.Varint(b[n:])
		if m <= 0 {
			return Value{}, 0, ErrCorrupt
		}
		return Int(i), n + m, nil
	case KindBool:
		if len(b) < n+1 {
			return Value{}, 0, ErrShortBuffer
		}
		return Bool(b[n] != 0), n + 1, nil
	case KindFloat:
		if len(b) < n+8 {
			return Value{}, 0, ErrShortBuffer
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		return Float(f), n + 8, nil
	case KindString:
		s, m, err := DecodeString(b[n:])
		if err != nil {
			return Value{}, 0, err
		}
		return Str(s), n + m, nil
	case KindList:
		cnt, m := binary.Uvarint(b[n:])
		if m <= 0 {
			return Value{}, 0, ErrCorrupt
		}
		n += m
		if cnt > uint64(len(b)) { // each element takes at least one byte
			return Value{}, 0, ErrCorrupt
		}
		vs := make([]Value, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			e, m, err := DecodeValue(b[n:])
			if err != nil {
				return Value{}, 0, err
			}
			vs = append(vs, e)
			n += m
		}
		return List(vs...), n, nil
	default:
		return Value{}, 0, fmt.Errorf("%w: unknown value kind %d", ErrCorrupt, kind)
	}
}

// AppendString appends a length-prefixed string.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// DecodeString decodes a length-prefixed string, returning the string and
// bytes consumed.
func DecodeString(b []byte) (string, int, error) {
	l, m := binary.Uvarint(b)
	if m <= 0 {
		return "", 0, ErrCorrupt
	}
	if uint64(len(b)-m) < l {
		return "", 0, ErrShortBuffer
	}
	return string(b[m : m+int(l)]), m + int(l), nil
}

// AppendBytes appends a length-prefixed byte slice.
func AppendBytes(b []byte, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// DecodeBytes decodes a length-prefixed byte slice. The returned slice
// aliases b.
func DecodeBytes(b []byte) ([]byte, int, error) {
	l, m := binary.Uvarint(b)
	if m <= 0 {
		return nil, 0, ErrCorrupt
	}
	if uint64(len(b)-m) < l {
		return nil, 0, ErrShortBuffer
	}
	return b[m : m+int(l)], m + int(l), nil
}

// AppendTuple appends the wire encoding of t to b.
func AppendTuple(b []byte, t Tuple) []byte {
	b = AppendString(b, t.Pred)
	b = AppendString(b, t.Asserter)
	b = binary.AppendUvarint(b, uint64(len(t.Args)))
	for _, v := range t.Args {
		b = AppendValue(b, v)
	}
	return b
}

// EncodeTuple returns the wire encoding of t.
func EncodeTuple(t Tuple) []byte { return AppendTuple(nil, t) }

// DecodeTuple decodes one tuple from b, returning it and the bytes consumed.
func DecodeTuple(b []byte) (Tuple, int, error) {
	pred, n, err := DecodeString(b)
	if err != nil {
		return Tuple{}, 0, err
	}
	asserter, m, err := DecodeString(b[n:])
	if err != nil {
		return Tuple{}, 0, err
	}
	n += m
	arity, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return Tuple{}, 0, ErrCorrupt
	}
	n += m
	if arity > uint64(len(b)) {
		return Tuple{}, 0, ErrCorrupt
	}
	args := make([]Value, 0, arity)
	for i := uint64(0); i < arity; i++ {
		v, m, err := DecodeValue(b[n:])
		if err != nil {
			return Tuple{}, 0, err
		}
		args = append(args, v)
		n += m
	}
	return Tuple{Pred: pred, Asserter: asserter, Args: args}, n, nil
}

// EncodedSize returns the wire size of t without materialising the bytes.
func EncodedSize(t Tuple) int {
	n := uvarintLen(uint64(len(t.Pred))) + len(t.Pred)
	n += uvarintLen(uint64(len(t.Asserter))) + len(t.Asserter)
	n += uvarintLen(uint64(len(t.Args)))
	for _, v := range t.Args {
		n += valueSize(v)
	}
	return n
}

func valueSize(v Value) int {
	switch v.Kind {
	case KindInt:
		return 1 + varintLen(v.Int)
	case KindBool:
		return 2
	case KindFloat:
		return 9
	case KindString:
		return 1 + uvarintLen(uint64(len(v.Str))) + len(v.Str)
	case KindList:
		n := 1 + uvarintLen(uint64(len(v.List)))
		for _, e := range v.List {
			n += valueSize(e)
		}
		return n
	default:
		return 1
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

func varintLen(x int64) int {
	ux := uint64(x) << 1
	if x < 0 {
		ux = ^ux
	}
	return uvarintLen(ux)
}
