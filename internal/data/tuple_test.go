package data

import (
	"testing"
)

func TestTupleBasics(t *testing.T) {
	tu := NewTuple("link", Str("a"), Str("b"), Int(1))
	if tu.Pred != "link" || tu.Arity() != 3 {
		t.Fatalf("NewTuple = %#v", tu)
	}
	if got := tu.String(); got != "link(a, b, 1)" {
		t.Errorf("String = %q", got)
	}
	said := tu.Says("a")
	if said.Asserter != "a" || tu.Asserter != "" {
		t.Errorf("Says should not mutate receiver: %#v / %#v", said, tu)
	}
	if got := said.String(); got != "a says link(a, b, 1)" {
		t.Errorf("said String = %q", got)
	}
	if said.WithoutAsserter().Asserter != "" {
		t.Error("WithoutAsserter")
	}
}

func TestTupleEqualAndKey(t *testing.T) {
	a := NewTuple("p", Int(1), Str("x"))
	b := NewTuple("p", Int(1), Str("x"))
	c := NewTuple("p", Int(1), Str("y"))
	d := NewTuple("q", Int(1), Str("x"))
	e := a.Says("alice")

	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("identical tuples must be equal with equal keys")
	}
	for _, o := range []Tuple{c, d, e} {
		if a.Equal(o) {
			t.Errorf("a should differ from %v", o)
		}
		if a.Key() == o.Key() {
			t.Errorf("key collision between %v and %v", a, o)
		}
	}
}

func TestTupleKeyInjectiveAcrossArity(t *testing.T) {
	// "p"("ab") vs "pa"("b")-style confusions must not collide.
	pairs := [][2]Tuple{
		{NewTuple("p", Str("ab")), NewTuple("pa", Str("b"))},
		{NewTuple("p", Str("a"), Str("b")), NewTuple("p", Str("ab"))},
		{NewTuple("p"), NewTuple("p", Str(""))},
		{NewTuple("p", List(Int(1), Int(2))), NewTuple("p", Int(1), Int(2))},
	}
	for _, pr := range pairs {
		if pr[0].Key() == pr[1].Key() {
			t.Errorf("key collision: %v vs %v", pr[0], pr[1])
		}
	}
}

func TestValueKeySubset(t *testing.T) {
	a := NewTuple("path", Str("s"), Str("d"), Int(5))
	b := NewTuple("path", Str("s"), Str("d"), Int(9))
	if a.ValueKey([]int{0, 1}) != b.ValueKey([]int{0, 1}) {
		t.Error("ValueKey over group columns should match")
	}
	if a.ValueKey([]int{0, 1, 2}) == b.ValueKey([]int{0, 1, 2}) {
		t.Error("ValueKey over all columns should differ")
	}
}

func TestTupleClone(t *testing.T) {
	orig := NewTuple("p", List(Str("a"), Str("b")), Int(3))
	cp := orig.Clone()
	cp.Args[0].List[0] = Str("zz")
	cp.Args[1] = Int(99)
	if orig.Args[0].List[0].Str != "a" {
		t.Error("Clone must deep-copy nested lists")
	}
	if orig.Args[1].Int != 3 {
		t.Error("Clone must copy args")
	}
}

func TestSortTuples(t *testing.T) {
	ts := []Tuple{
		NewTuple("b", Int(2)),
		NewTuple("a", Int(9)),
		NewTuple("b", Int(1)),
		NewTuple("a", Int(1), Int(0)),
		NewTuple("a", Int(1)),
	}
	SortTuples(ts)
	want := []string{"a(1)", "a(1, 0)", "a(9)", "b(1)", "b(2)"}
	for i, w := range want {
		if ts[i].String() != w {
			t.Fatalf("sorted[%d] = %s, want %s", i, ts[i], w)
		}
	}
}
