package data

import (
	"sort"
	"strconv"
	"strings"
)

// Tuple is a fact: a predicate name applied to a list of values. In a
// SeNDlog network every tuple is asserted by a security principal (the
// "says" operator); Asserter records that principal, or is empty in plain
// NDlog mode.
type Tuple struct {
	// Pred is the predicate (relation) name, e.g. "link" or "reachable".
	Pred string
	// Args are the attribute values.
	Args []Value
	// Asserter is the principal that says this tuple ("" when
	// authentication is disabled).
	Asserter string
}

// NewTuple builds a tuple from a predicate name and values.
func NewTuple(pred string, args ...Value) Tuple {
	return Tuple{Pred: pred, Args: args}
}

// Arity returns the number of attributes.
func (t Tuple) Arity() int { return len(t.Args) }

// Says returns a copy of t asserted by the given principal.
func (t Tuple) Says(principal string) Tuple {
	t2 := t
	t2.Asserter = principal
	return t2
}

// WithoutAsserter returns a copy of t with the asserter cleared.
func (t Tuple) WithoutAsserter() Tuple {
	t2 := t
	t2.Asserter = ""
	return t2
}

// Equal reports whether two tuples have the same predicate, asserter and
// pairwise-equal arguments.
func (t Tuple) Equal(o Tuple) bool {
	if t.Pred != o.Pred || t.Asserter != o.Asserter || len(t.Args) != len(o.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(o.Args[i]) {
			return false
		}
	}
	return true
}

// Key returns a canonical injective string encoding of the tuple, suitable
// for use as a map key. Tuples are Equal iff their keys are equal.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16+8*len(t.Args))
	b = appendKeyString(b, t.Pred)
	b = appendKeyString(b, t.Asserter)
	for _, v := range t.Args {
		b = v.appendKey(b)
	}
	return string(b)
}

// ValueKey returns a key covering only the projected columns cols, prefixed
// with the predicate name. It is used for group-by and primary keys.
func (t Tuple) ValueKey(cols []int) string {
	b := make([]byte, 0, 16+8*len(cols))
	b = appendKeyString(b, t.Pred)
	b = appendKeyString(b, t.Asserter)
	for _, c := range cols {
		b = t.Args[c].appendKey(b)
	}
	return string(b)
}

func appendKeyString(b []byte, s string) []byte {
	b = strconv.AppendInt(b, int64(len(s)), 10)
	b = append(b, '|')
	b = append(b, s...)
	return b
}

// String renders the tuple as NDlog syntax, prefixed with "P says" when an
// asserter is present, e.g. `b says reachable(b, c)`.
func (t Tuple) String() string {
	var sb strings.Builder
	if t.Asserter != "" {
		sb.WriteString(t.Asserter)
		sb.WriteString(" says ")
	}
	sb.WriteString(t.Pred)
	sb.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Clone returns a deep copy of the tuple (argument slice and nested lists
// are copied).
func (t Tuple) Clone() Tuple {
	t2 := t
	t2.Args = cloneValues(t.Args)
	return t2
}

func cloneValues(vs []Value) []Value {
	if vs == nil {
		return nil
	}
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = v
		if v.Kind == KindList {
			out[i].List = cloneValues(v.List)
		}
	}
	return out
}

// SortTuples orders tuples by predicate, asserter, then argument order. It
// is used to produce deterministic output in tools and tests.
func SortTuples(ts []Tuple) {
	less := func(a, b Tuple) bool {
		if a.Pred != b.Pred {
			return a.Pred < b.Pred
		}
		if a.Asserter != b.Asserter {
			return a.Asserter < b.Asserter
		}
		n := len(a.Args)
		if len(b.Args) < n {
			n = len(b.Args)
		}
		for i := 0; i < n; i++ {
			if c := a.Args[i].Compare(b.Args[i]); c != 0 {
				return c < 0
			}
		}
		return len(a.Args) < len(b.Args)
	}
	if len(ts) <= 24 {
		insertionSortTuples(ts, less)
		return
	}
	sort.SliceStable(ts, func(i, j int) bool { return less(ts[i], ts[j]) })
}

func insertionSortTuples(ts []Tuple, less func(a, b Tuple) bool) {
	// Small slices keep the branch-friendly stable insertion sort; large
	// ones (whole-table view snapshots) would go quadratic on it, so they
	// fall through to sort.SliceStable above.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && less(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
