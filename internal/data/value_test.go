package data

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueConstructors(t *testing.T) {
	if v := Int(42); v.Kind != KindInt || v.Int != 42 {
		t.Fatalf("Int(42) = %#v", v)
	}
	if v := Str("abc"); v.Kind != KindString || v.Str != "abc" {
		t.Fatalf("Str = %#v", v)
	}
	if v := Float(1.5); v.Kind != KindFloat || v.Float != 1.5 {
		t.Fatalf("Float = %#v", v)
	}
	if v := Bool(true); v.Kind != KindBool || v.Int != 1 {
		t.Fatalf("Bool(true) = %#v", v)
	}
	if v := Bool(false); v.Kind != KindBool || v.Int != 0 {
		t.Fatalf("Bool(false) = %#v", v)
	}
	if v := List(Int(1), Str("x")); v.Kind != KindList || len(v.List) != 2 {
		t.Fatalf("List = %#v", v)
	}
	if v := Strings("a", "b"); v.Kind != KindList || v.List[1].Str != "b" {
		t.Fatalf("Strings = %#v", v)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(2), Float(2.0), true},
		{Float(2.5), Int(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Str("1"), Int(1), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Int(1), false},
		{List(Int(1), Int(2)), List(Int(1), Int(2)), true},
		{List(Int(1)), List(Int(1), Int(2)), false},
		{List(), List(), true},
		{List(List(Str("x"))), List(List(Str("x"))), true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: %v.Equal(%v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Equal(c.a); got != c.want {
			t.Errorf("case %d (sym): %v.Equal(%v) = %v, want %v", i, c.b, c.a, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	ordered := []Value{
		Int(-3), Float(-1.5), Int(0), Float(0.5), Int(7),
		Str("a"), Str("b"), Str("ba"),
		List(), List(Int(1)), List(Int(1), Int(0)), List(Int(2)),
	}
	for i := range ordered {
		for j := range ordered {
			got := ordered[i].Compare(ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueIsTrue(t *testing.T) {
	truthy := []Value{Int(1), Int(-1), Float(0.1), Str("x"), Bool(true), List(Int(0))}
	falsy := []Value{Int(0), Float(0), Str(""), Bool(false), List()}
	for _, v := range truthy {
		if !v.IsTrue() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.IsTrue() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(5), "5"},
		{Int(-5), "-5"},
		{Float(2.5), "2.5"},
		{Str("node1"), "node1"},
		{Str("Has Space"), `"Has Space"`},
		{Str(""), `""`},
		{Bool(true), "true"},
		{List(Str("a"), Str("b")), "[a,b]"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueKeyInjective(t *testing.T) {
	vals := []Value{
		Int(1), Int(2), Int(12), Str("1"), Str("12"), Str(""),
		Float(1.5), Bool(true), Bool(false),
		List(), List(Int(1), Int(2)), List(Int(12)), List(Str("ab")), List(Str("a"), Str("b")),
		List(List(Int(1)), Int(2)), List(List(Int(1), Int(2))),
	}
	for i := range vals {
		for j := range vals {
			ka, kb := vals[i].Key(), vals[j].Key()
			if (ka == kb) != vals[i].Equal(vals[j]) {
				t.Errorf("key collision/divergence: %v vs %v (keys %q, %q)", vals[i], vals[j], ka, kb)
			}
		}
	}
}

func TestIntFloatKeyAgreement(t *testing.T) {
	// Equal numeric values must share keys regardless of representation.
	if Int(7).Key() != Float(7).Key() {
		t.Errorf("Int(7) and Float(7) keys differ: %q vs %q", Int(7).Key(), Float(7).Key())
	}
	if Int(7).Key() == Float(7.5).Key() {
		t.Errorf("Int(7) and Float(7.5) keys collide")
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if Int(3).AsFloat() != 3.0 {
		t.Error("Int(3).AsFloat()")
	}
	if Float(3.7).AsInt() != 3 {
		t.Error("Float(3.7).AsInt()")
	}
	if !math.IsNaN(Str("x").AsFloat()) {
		t.Error("Str.AsFloat should be NaN")
	}
	if Str("x").AsInt() != 0 {
		t.Error("Str.AsInt should be 0")
	}
	if Bool(true).AsInt() != 1 {
		t.Error("Bool(true).AsInt()")
	}
}

// randomValue generates an arbitrary value with bounded depth for property
// tests.
func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(5)
	if depth <= 0 && k == 3 {
		k = 0
	}
	switch k {
	case 0:
		return Int(r.Int63n(1<<40) - 1<<39)
	case 1:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		return Str(string(b))
	case 2:
		return Float(r.NormFloat64() * 100)
	case 3:
		n := r.Intn(4)
		vs := make([]Value, n)
		for i := range vs {
			vs[i] = randomValue(r, depth-1)
		}
		return List(vs...)
	default:
		return Bool(r.Intn(2) == 0)
	}
}

func TestQuickCompareConsistentWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomValue(rr, 3), randomValue(rr, 3)
		_ = r
		return (a.Compare(b) == 0) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a, b := randomValue(rr, 3), randomValue(rr, 3)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
