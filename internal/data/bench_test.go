package data

import "testing"

// BenchmarkTupleKey contrasts the legacy materialized string key with the
// allocation-free structural hash that replaced it on the hot path.
func BenchmarkTupleKey(b *testing.B) {
	t := NewTuple("path", Str("node-1"), Str("node-9"), Int(42),
		Strings("node-1", "node-4", "node-9"), Float(0.25)).Says("node-1")
	b.Run("key", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.Key()
		}
	})
	b.Run("hash", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.Hash()
		}
	})
	cols := []int{0, 1}
	b.Run("valuekey", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.ValueKey(cols)
		}
	})
	b.Run("hashcols", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = t.HashCols(cols)
		}
	})
}
