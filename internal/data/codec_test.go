package data

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValueRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(1 << 40), Int(-(1 << 40)),
		Str(""), Str("hello"), Str("with \x00 bytes"),
		Float(0), Float(-2.5), Float(1e300),
		Bool(true), Bool(false),
		List(), List(Int(1), Str("a"), List(Float(2.5))),
	}
	for _, v := range vals {
		b := AppendValue(nil, v)
		got, n, err := DecodeValue(b)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if n != len(b) {
			t.Errorf("decode %v consumed %d of %d bytes", v, n, len(b))
		}
		if !got.Equal(v) || got.Kind != v.Kind {
			t.Errorf("round trip %v -> %v", v, got)
		}
		if sz := valueSize(v); sz != len(b) {
			t.Errorf("valueSize(%v) = %d, encoded %d", v, sz, len(b))
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	ts := []Tuple{
		NewTuple("link", Str("a"), Str("b"), Int(1)),
		NewTuple("empty"),
		NewTuple("path", Str("a"), Str("c"), List(Str("a"), Str("b"), Str("c")), Int(7)).Says("alice"),
	}
	for _, tu := range ts {
		b := EncodeTuple(tu)
		got, n, err := DecodeTuple(b)
		if err != nil {
			t.Fatalf("decode %v: %v", tu, err)
		}
		if n != len(b) {
			t.Errorf("consumed %d of %d", n, len(b))
		}
		if !got.Equal(tu) {
			t.Errorf("round trip %v -> %v", tu, got)
		}
		if sz := EncodedSize(tu); sz != len(b) {
			t.Errorf("EncodedSize(%v) = %d, encoded %d", tu, sz, len(b))
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeValue(nil); err == nil {
		t.Error("empty buffer should fail")
	}
	if _, _, err := DecodeValue([]byte{99}); err == nil {
		t.Error("unknown kind should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindFloat), 1, 2}); err == nil {
		t.Error("short float should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindString), 10, 'a'}); err == nil {
		t.Error("short string should fail")
	}
	if _, _, err := DecodeValue([]byte{byte(KindList), 200, 1}); err == nil {
		t.Error("absurd list count should fail")
	}
	if _, _, err := DecodeTuple([]byte{}); err == nil {
		t.Error("empty tuple buffer should fail")
	}
	// Truncated tuple: valid pred, then nothing.
	b := AppendString(nil, "pred")
	if _, _, err := DecodeTuple(b); err == nil {
		t.Error("truncated tuple should fail")
	}
}

func TestMultipleValuesSequential(t *testing.T) {
	var b []byte
	in := []Value{Int(5), Str("x"), List(Int(1))}
	for _, v := range in {
		b = AppendValue(b, v)
	}
	off := 0
	for i, want := range in {
		got, n, err := DecodeValue(b[off:])
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if !got.Equal(want) {
			t.Fatalf("value %d: got %v want %v", i, got, want)
		}
		off += n
	}
	if off != len(b) {
		t.Errorf("leftover bytes: %d", len(b)-off)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	for _, p := range [][]byte{nil, {}, {1, 2, 3}, make([]byte, 1000)} {
		b := AppendBytes(nil, p)
		got, n, err := DecodeBytes(b)
		if err != nil || n != len(b) || len(got) != len(p) {
			t.Fatalf("bytes round trip len=%d: got %d bytes, n=%d, err=%v", len(p), len(got), n, err)
		}
	}
}

func TestQuickValueRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 4)
		b := AppendValue(nil, v)
		got, n, err := DecodeValue(b)
		return err == nil && n == len(b) && got.Equal(v) && valueSize(v) == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTupleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6)
		args := make([]Value, n)
		for i := range args {
			args[i] = randomValue(r, 3)
		}
		tu := Tuple{Pred: "p", Args: args}
		if r.Intn(2) == 0 {
			tu.Asserter = "alice"
		}
		b := EncodeTuple(tu)
		got, m, err := DecodeTuple(b)
		return err == nil && m == len(b) && got.Equal(tu) && EncodedSize(tu) == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
