package data

import "sync"

// A process-wide interning table for low-cardinality symbols: predicate
// names, node addresses / destinations, principal (asserter) names. Two
// jobs: (1) map a symbol to a small dense integer id so hot-path
// signatures (dependency edges, withdrawal queues) can carry a uint32
// instead of concatenated strings, and (2) return one canonical backing
// string so the thousands of copies decoded off the wire all share
// storage.
//
// The table is append-only and concurrency-safe: a read-lock fast path
// serves the steady state, a write lock admits new symbols. Ids are
// assigned in first-seen order and never recycled. Symbol cardinality is
// bounded by program text plus topology (predicates, nodes, principals),
// so the table stays small for any real deployment; Intern additionally
// refuses to grow past a cap so adversarial wire input cannot balloon it.

type internTable struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

var interner = internTable{ids: make(map[string]uint32, 64)}

// maxInterned caps canonicalization of arbitrary (wire-supplied) strings.
// Symbol-id allocation via InternID is engine-internal and uncapped.
const maxInterned = 1 << 20

// InternID returns the dense id for a symbol, allocating one on first
// sight. Call it only for low-cardinality symbols (destinations,
// predicates, principals) — ids are never freed.
func InternID(s string) uint32 {
	interner.mu.RLock()
	id, ok := interner.ids[s]
	interner.mu.RUnlock()
	if ok {
		return id
	}
	interner.mu.Lock()
	defer interner.mu.Unlock()
	if id, ok = interner.ids[s]; ok {
		return id
	}
	// Copy the key so an interned id never pins a larger buffer the
	// caller sliced s from.
	s = string(append([]byte(nil), s...))
	id = uint32(len(interner.strs))
	interner.strs = append(interner.strs, s)
	interner.ids[s] = id
	return id
}

// InternedString returns the symbol for an id previously returned by
// InternID. Unknown ids return "".
func InternedString(id uint32) string {
	interner.mu.RLock()
	defer interner.mu.RUnlock()
	if int(id) >= len(interner.strs) {
		return ""
	}
	return interner.strs[id]
}

// Intern returns the canonical shared backing for s: the first string
// equal to s that entered the table. Once the table is at capacity,
// unseen strings are returned unchanged (still correct, just not
// deduplicated), so hostile input cannot grow the table without bound.
func Intern(s string) string {
	interner.mu.RLock()
	id, ok := interner.ids[s]
	if ok {
		c := interner.strs[id]
		interner.mu.RUnlock()
		return c
	}
	full := len(interner.strs) >= maxInterned
	interner.mu.RUnlock()
	if full {
		return s
	}
	InternID(s)
	return s
}
