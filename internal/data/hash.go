package data

import (
	"math"
	"sync/atomic"
)

// Structural 64-bit hashing for values and tuples (FNV-1a). These hashes
// are the allocation-free replacement for the materialized Key()/ValueKey()
// strings on the hot path: tables, join indexes, the dependency index,
// aggregate groups and the retraction sets all key on (hash, equality
// check) buckets instead of strings.
//
// The contract mirrors the key encodings exactly: if two values are Equal
// their hashes are equal (in particular an int that is exactly
// representable as a float64 hashes as its float form, so Int(2) and
// Float(2.0) collide on purpose, just as their Key() encodings are
// byte-identical). The converse does not hold — distinct values may
// collide — so every hash-keyed structure falls back to Equal inside a
// bucket.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// testHashMask restricts hashes to a few low bits under test so collision
// fallbacks are exercised; ^0 in production. Accessed atomically so -race
// tests can flip it around concurrent hashing.
var testHashMask atomic.Uint64

func init() { testHashMask.Store(^uint64(0)) }

// LimitHashBitsForTesting restricts every structural hash to its low n
// bits, forcing bucket collisions so tests can verify the equality
// fallback. It returns a restore func; production code never calls this.
func LimitHashBitsForTesting(n uint) (restore func()) {
	prev := testHashMask.Load()
	testHashMask.Store((uint64(1) << n) - 1)
	return func() { testHashMask.Store(prev) }
}

func hashByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func hashWord(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func hashStr(h uint64, s string) uint64 {
	h = hashWord(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// hashInto folds v's structural encoding into h. The per-kind tag bytes
// and the int→float unification mirror appendKey.
func (v Value) hashInto(h uint64) uint64 {
	switch v.Kind {
	case KindInt:
		f := float64(v.Int)
		if int64(f) == v.Int {
			h = hashByte(h, 'f')
			h = hashWord(h, math.Float64bits(f))
		} else {
			h = hashByte(h, 'i')
			h = hashWord(h, uint64(v.Int))
		}
	case KindFloat:
		h = hashByte(h, 'f')
		h = hashWord(h, math.Float64bits(v.Float))
	case KindBool:
		h = hashByte(h, 'b')
		h = hashByte(h, byte(v.Int))
	case KindString:
		h = hashByte(h, 's')
		h = hashStr(h, v.Str)
	case KindList:
		h = hashByte(h, 'l')
		h = hashWord(h, uint64(len(v.List)))
		for _, e := range v.List {
			h = e.hashInto(h)
		}
	}
	return h
}

// Hash returns the structural hash of a value. Equal values hash equally
// (including int/float numeric unification).
func (v Value) Hash() uint64 {
	return v.hashInto(fnvOffset64) & testHashMask.Load()
}

// Hash returns the structural hash of the whole tuple: predicate,
// asserter, and every argument. Tuples that are Equal hash equally.
func (t Tuple) Hash() uint64 {
	h := hashStr(fnvOffset64, t.Pred)
	h = hashStr(h, t.Asserter)
	for _, v := range t.Args {
		h = v.hashInto(h)
	}
	return h & testHashMask.Load()
}

// HashCols returns the structural hash of the projection mirrored by
// ValueKey: predicate, asserter, then the selected columns in order.
func (t Tuple) HashCols(cols []int) uint64 {
	h := hashStr(fnvOffset64, t.Pred)
	h = hashStr(h, t.Asserter)
	for _, c := range cols {
		h = t.Args[c].hashInto(h)
	}
	return h & testHashMask.Load()
}

// HashArgs folds the selected argument columns (no predicate or
// asserter) into one hash. It equals HashValues(vals) whenever vals is
// pairwise Equal to the projected columns — the index-build twin of a
// join probe.
func (t Tuple) HashArgs(cols []int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		h = t.Args[c].hashInto(h)
	}
	return h & testHashMask.Load()
}

// HashValues folds a sequence of values into one hash — the probe-side
// twin of hashing an entry's indexed columns. Two value slices with
// pairwise-Equal elements hash equally.
func HashValues(vals []Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h = v.hashInto(h)
	}
	return h & testHashMask.Load()
}

// HashString folds an arbitrary string into a structural hash, for
// callers that mix symbols (rule labels, destinations) with tuple hashes.
func HashString(s string) uint64 {
	return hashStr(fnvOffset64, s) & testHashMask.Load()
}

// EqualValues reports pairwise equality of two value slices, the bucket
// fallback companion to HashValues.
func EqualValues(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
