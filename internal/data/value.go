// Package data defines the typed values and tuples that flow through a
// declarative network, together with a compact binary wire codec. Every
// higher layer (the NDlog engine, the provenance subsystem, the simulated
// transport) is built on these types, and the bandwidth numbers reported by
// the experiment harness are the exact sizes produced by this codec.
package data

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The value kinds supported by the engine. NDlog programs manipulate
// integers (costs, counters), strings (node addresses, principal names),
// floats (rates), and lists (paths).
const (
	KindInt Kind = iota
	KindFloat
	KindBool
	KindString
	KindList
)

// String returns the name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	case KindList:
		return "list"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed constant. The zero value is the integer 0.
//
// Value is a small struct passed by value; lists share their backing slice,
// which callers must treat as immutable once the value is constructed.
type Value struct {
	Kind Kind
	// Int holds the payload for KindInt and KindBool (0 or 1).
	Int int64
	// Float holds the payload for KindFloat.
	Float float64
	// Str holds the payload for KindString.
	Str string
	// List holds the payload for KindList.
	List []Value
}

// Int returns an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, Int: i} }

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, Str: s} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{Kind: KindBool, Int: 1}
	}
	return Value{Kind: KindBool}
}

// List returns a list value holding vs. The slice is used directly.
func List(vs ...Value) Value { return Value{Kind: KindList, List: vs} }

// Strings returns a list value of strings, convenient for path values.
func Strings(ss ...string) Value {
	vs := make([]Value, len(ss))
	for i, s := range ss {
		vs[i] = Str(s)
	}
	return List(vs...)
}

// IsTrue reports whether v is truthy: a true bool, a non-zero number, a
// non-empty string or list.
func (v Value) IsTrue() bool {
	switch v.Kind {
	case KindBool, KindInt:
		return v.Int != 0
	case KindFloat:
		return v.Float != 0
	case KindString:
		return v.Str != ""
	case KindList:
		return len(v.List) > 0
	default:
		return false
	}
}

// Equal reports deep equality of two values. Values of different kinds are
// never equal, except that int and float compare numerically equal when they
// denote the same number.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		if (v.Kind == KindInt && o.Kind == KindFloat) || (v.Kind == KindFloat && o.Kind == KindInt) {
			return v.AsFloat() == o.AsFloat()
		}
		return false
	}
	switch v.Kind {
	case KindInt, KindBool:
		return v.Int == o.Int
	case KindFloat:
		return v.Float == o.Float
	case KindString:
		return v.Str == o.Str
	case KindList:
		if len(v.List) != len(o.List) {
			return false
		}
		for i := range v.List {
			if !v.List[i].Equal(o.List[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Compare orders values: first by kind (with int/float compared numerically
// against each other), then by payload. It returns -1, 0 or +1.
func (v Value) Compare(o Value) int {
	numeric := func(k Kind) bool { return k == KindInt || k == KindFloat }
	if numeric(v.Kind) && numeric(o.Kind) {
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case KindBool:
		switch {
		case v.Int < o.Int:
			return -1
		case v.Int > o.Int:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(v.Str, o.Str)
	case KindList:
		n := len(v.List)
		if len(o.List) < n {
			n = len(o.List)
		}
		for i := 0; i < n; i++ {
			if c := v.List[i].Compare(o.List[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.List) < len(o.List):
			return -1
		case len(v.List) > len(o.List):
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsFloat converts a numeric value to float64; non-numeric values yield NaN.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case KindInt, KindBool:
		return float64(v.Int)
	case KindFloat:
		return v.Float
	default:
		return math.NaN()
	}
}

// AsInt converts a numeric value to int64 (truncating floats); non-numeric
// values yield 0.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KindInt, KindBool:
		return v.Int
	case KindFloat:
		return int64(v.Float)
	default:
		return 0
	}
}

// String renders the value in NDlog literal syntax.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindBool:
		if v.Int != 0 {
			return "true"
		}
		return "false"
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindString:
		return quoteIfNeeded(v.Str)
	case KindList:
		var b strings.Builder
		b.WriteByte('[')
		for i, e := range v.List {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
		return b.String()
	default:
		return "?"
	}
}

// quoteIfNeeded renders a string bare when it looks like an NDlog constant
// identifier (lower-case start, alphanumeric) and quoted otherwise.
func quoteIfNeeded(s string) string {
	if s == "" {
		return `""`
	}
	bare := s[0] >= 'a' && s[0] <= 'z'
	if bare {
		for i := 0; i < len(s); i++ {
			c := s[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '.' || c == ':') {
				bare = false
				break
			}
		}
	}
	if bare {
		return s
	}
	return strconv.Quote(s)
}

// appendKey appends a canonical, injective encoding of v to b. Two values
// are Equal iff their key encodings are byte-identical, except that ints and
// floats denoting the same number encode identically (both as the float
// form) so that key equality matches Equal.
func (v Value) appendKey(b []byte) []byte {
	switch v.Kind {
	case KindInt:
		// Encode as float when exactly representable so 2 == 2.0 share keys;
		// int64 values beyond 2^53 fall back to an exact integer form.
		f := float64(v.Int)
		if int64(f) == v.Int {
			b = append(b, 'f')
			b = strconv.AppendFloat(b, f, 'b', -1, 64)
		} else {
			b = append(b, 'i')
			b = strconv.AppendInt(b, v.Int, 36)
		}
	case KindBool:
		b = append(b, 'b', byte('0'+v.Int))
	case KindFloat:
		b = append(b, 'f')
		b = strconv.AppendFloat(b, v.Float, 'b', -1, 64)
	case KindString:
		b = append(b, 's')
		b = strconv.AppendInt(b, int64(len(v.Str)), 10)
		b = append(b, ':')
		b = append(b, v.Str...)
	case KindList:
		b = append(b, 'l')
		b = strconv.AppendInt(b, int64(len(v.List)), 10)
		b = append(b, ':')
		for _, e := range v.List {
			b = e.appendKey(b)
		}
	}
	return b
}

// Key returns the canonical key encoding of v as a string, usable as a map
// key.
func (v Value) Key() string { return string(v.appendKey(nil)) }

// SortValues sorts a slice of values in Compare order, in place.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Compare(vs[j]) < 0 })
}
